// Package sensornet models the ground layer of the paper's system: a
// sparse network of aggregate IoT sensor nodes, each storing a volume D_v
// of sensory data (its own plus data forwarded from neighbouring non-
// aggregate devices), deployed in a rectangular monitoring region together
// with the UAV depot.
//
// Units: metres for positions, megabytes for data, MB/s for bandwidth —
// the units of the paper's experimental section.
package sensornet

import (
	"fmt"
	"math"

	"uavdc/internal/geom"
)

// Sensor is one aggregate sensor node.
type Sensor struct {
	// Pos is the ground position (x, y, 0) of the node.
	Pos geom.Point
	// Data is the stored volume D_v in MB awaiting collection.
	Data float64
}

// Network is an aggregate sensor network plus the UAV depot.
type Network struct {
	// Region is the monitoring region.
	Region geom.Rect
	// Depot is the UAV's start/return position (assumed inside Region).
	Depot geom.Point
	// Sensors are the aggregate sensor nodes.
	Sensors []Sensor
	// Bandwidth B is the uplink rate of every node, in MB/s. The paper
	// assumes all nodes within hover coverage share the same rate.
	Bandwidth float64
	// CommRange R is the radio transmission range of a node in metres;
	// it caps the UAV hover altitude and defines ground connectivity.
	CommRange float64

	index *geom.Index
}

// Validate checks structural invariants: positive bandwidth and range,
// sensors inside the region with non-negative data, depot inside region.
func (n *Network) Validate() error {
	if !(n.Bandwidth > 0) || math.IsInf(n.Bandwidth, 1) {
		return fmt.Errorf("sensornet: bandwidth must be positive and finite, got %v", n.Bandwidth)
	}
	if !(n.CommRange > 0) || math.IsInf(n.CommRange, 1) {
		return fmt.Errorf("sensornet: comm range must be positive and finite, got %v", n.CommRange)
	}
	if !n.Region.Contains(n.Depot) {
		return fmt.Errorf("sensornet: depot %v outside region", n.Depot)
	}
	for i, s := range n.Sensors {
		if !n.Region.Contains(s.Pos) {
			return fmt.Errorf("sensornet: sensor %d at %v outside region", i, s.Pos)
		}
		if s.Data < 0 || math.IsNaN(s.Data) || math.IsInf(s.Data, 1) {
			return fmt.Errorf("sensornet: sensor %d has invalid data volume %v", i, s.Data)
		}
	}
	return nil
}

// Positions returns the sensor positions, in sensor order.
func (n *Network) Positions() []geom.Point {
	pts := make([]geom.Point, len(n.Sensors))
	for i, s := range n.Sensors {
		pts[i] = s.Pos
	}
	return pts
}

// Index returns (building lazily) a spatial index over the sensor
// positions. The index is invalidated by mutating Sensors; callers that
// mutate should call InvalidateIndex.
func (n *Network) Index() *geom.Index {
	if n.index == nil || n.index.Len() != len(n.Sensors) {
		n.index = geom.NewIndex(n.Positions(), n.CommRange)
	}
	return n.index
}

// InvalidateIndex discards the cached spatial index.
func (n *Network) InvalidateIndex() { n.index = nil }

// TotalData returns the sum of all stored volumes, the upper bound any
// collection plan can reach.
func (n *Network) TotalData() float64 {
	var sum float64
	for _, s := range n.Sensors {
		sum += s.Data
	}
	return sum
}

// CoveredBy returns the indices of sensors within radius of p — the
// coverage set C(s) of a hover position projected to the ground.
func (n *Network) CoveredBy(p geom.Point, radius float64) []int {
	return n.Index().Within(p, radius)
}

// UploadTime returns the time for sensor i to upload all of its stored
// data: D_v / B.
func (n *Network) UploadTime(i int) float64 {
	return n.Sensors[i].Data / n.Bandwidth
}

// ConnectedComponents returns the number of connected components of the
// ground network, where two nodes are adjacent when within CommRange of
// each other. The paper's premise is that this number is typically large —
// aggregate nodes are sparse, so multi-hop relay to a base station is
// impossible and a UAV is needed.
func (n *Network) ConnectedComponents() int {
	k := len(n.Sensors)
	if k == 0 {
		return 0
	}
	idx := n.Index()
	visited := make([]bool, k)
	comps := 0
	var stack []int
	for s := 0; s < k; s++ {
		if visited[s] {
			continue
		}
		comps++
		stack = append(stack[:0], s)
		visited[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range idx.Within(n.Sensors[v].Pos, n.CommRange) {
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	return comps
}
