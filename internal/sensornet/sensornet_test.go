package sensornet

import (
	"math"
	"testing"

	"uavdc/internal/geom"
	"uavdc/internal/rng"
)

func testNet() *Network {
	return &Network{
		Region:    geom.Square(100),
		Depot:     geom.Pt(50, 50),
		Bandwidth: 150,
		CommRange: 20,
		Sensors: []Sensor{
			{Pos: geom.Pt(10, 10), Data: 300},
			{Pos: geom.Pt(15, 10), Data: 600},
			{Pos: geom.Pt(90, 90), Data: 150},
		},
	}
}

func TestValidate(t *testing.T) {
	n := testNet()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testNet()
	bad.Bandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = testNet()
	bad.CommRange = -1
	if bad.Validate() == nil {
		t.Error("negative range accepted")
	}
	bad = testNet()
	bad.Depot = geom.Pt(-1, 0)
	if bad.Validate() == nil {
		t.Error("depot outside region accepted")
	}
	bad = testNet()
	bad.Sensors[0].Pos = geom.Pt(101, 0)
	if bad.Validate() == nil {
		t.Error("sensor outside region accepted")
	}
	bad = testNet()
	bad.Sensors[1].Data = math.NaN()
	if bad.Validate() == nil {
		t.Error("NaN data accepted")
	}
}

func TestTotalDataAndUploadTime(t *testing.T) {
	n := testNet()
	if got := n.TotalData(); got != 1050 {
		t.Errorf("TotalData = %v", got)
	}
	if got := n.UploadTime(1); got != 4 {
		t.Errorf("UploadTime(1) = %v, want 600/150", got)
	}
}

func TestCoveredBy(t *testing.T) {
	n := testNet()
	got := n.CoveredBy(geom.Pt(12, 10), 5)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("CoveredBy = %v", got)
	}
	if got := n.CoveredBy(geom.Pt(50, 50), 5); len(got) != 0 {
		t.Errorf("empty coverage expected, got %v", got)
	}
}

func TestIndexInvalidation(t *testing.T) {
	n := testNet()
	_ = n.Index()
	n.Sensors = append(n.Sensors, Sensor{Pos: geom.Pt(50, 50), Data: 10})
	// Length change triggers rebuild even without InvalidateIndex.
	if got := n.CoveredBy(geom.Pt(50, 50), 1); len(got) != 1 {
		t.Errorf("index not rebuilt after append: %v", got)
	}
	n.Sensors[3].Pos = geom.Pt(60, 60)
	n.InvalidateIndex()
	if got := n.CoveredBy(geom.Pt(60, 60), 1); len(got) != 1 {
		t.Errorf("index not rebuilt after invalidation: %v", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	n := testNet()
	// Sensors 0 and 1 are 5 m apart (< 20), sensor 2 is far away.
	if got := n.ConnectedComponents(); got != 2 {
		t.Errorf("ConnectedComponents = %d, want 2", got)
	}
	empty := &Network{Region: geom.Square(10), Depot: geom.Pt(1, 1), Bandwidth: 1, CommRange: 1}
	if got := empty.ConnectedComponents(); got != 0 {
		t.Errorf("empty network components = %d", got)
	}
}

func TestDefaultGenParamsMatchPaper(t *testing.T) {
	p := DefaultGenParams()
	if p.NumSensors != 500 || p.Side != 1000 || p.DataMin != 100 || p.DataMax != 1000 ||
		p.Bandwidth != 150 || p.CommRange != 50 {
		t.Errorf("DefaultGenParams = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenParamsValidate(t *testing.T) {
	cases := []func(GenParams) GenParams{
		func(p GenParams) GenParams { p.NumSensors = -1; return p },
		func(p GenParams) GenParams { p.Side = 0; return p },
		func(p GenParams) GenParams { p.DataMin = -1; return p },
		func(p GenParams) GenParams { p.DataMax = p.DataMin - 1; return p },
		func(p GenParams) GenParams { p.Bandwidth = 0; return p },
		func(p GenParams) GenParams { p.CommRange = 0; return p },
	}
	for i, mut := range cases {
		if err := mut(DefaultGenParams()).Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerate(t *testing.T) {
	p := DefaultGenParams()
	p.NumSensors = 200
	net, err := Generate(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.Sensors) != 200 {
		t.Fatalf("sensor count %d", len(net.Sensors))
	}
	if net.Depot != geom.Pt(500, 500) {
		t.Errorf("depot = %v", net.Depot)
	}
	for i, s := range net.Sensors {
		if s.Data < 100 || s.Data >= 1000 {
			t.Fatalf("sensor %d data %v outside [100,1000)", i, s.Data)
		}
	}
	// Reproducibility.
	net2, _ := Generate(p, rng.New(1))
	for i := range net.Sensors {
		if net.Sensors[i] != net2.Sensors[i] {
			t.Fatal("same seed produced different networks")
		}
	}
	net3, _ := Generate(p, rng.New(2))
	same := true
	for i := range net.Sensors {
		if net.Sensors[i] != net3.Sensors[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical networks")
	}
}

func TestGenerateDepotCorner(t *testing.T) {
	p := DefaultGenParams()
	p.NumSensors = 5
	p.DepotAtCenter = false
	net, err := Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if net.Depot != geom.Pt(0, 0) {
		t.Errorf("corner depot = %v", net.Depot)
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	p := DefaultGenParams()
	p.Side = -1
	if _, err := Generate(p, rng.New(1)); err == nil {
		t.Error("bad params accepted")
	}
}

func TestGenerateWithDevices(t *testing.T) {
	p := DefaultGenParams()
	p.NumSensors = 100
	net, field, err := GenerateWithDevices(p, 10, 50, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(field.Positions) != 1000 || len(field.Rates) != 1000 || len(field.AssignedTo) != 1000 {
		t.Fatalf("device field sizes wrong: %d", len(field.Positions))
	}
	// Conservation: every assigned device's rate appears in exactly one
	// aggregate's stored volume on top of the own base.
	var forwarded float64
	for i, a := range field.AssignedTo {
		if a >= 0 {
			forwarded += field.Rates[i]
			if field.Positions[i].Dist(net.Sensors[a].Pos) > p.CommRange+1e-9 {
				t.Fatalf("device %d assigned out of range", i)
			}
		}
	}
	wantTotal := 50*float64(len(net.Sensors)) + forwarded
	if math.Abs(net.TotalData()-wantTotal) > 1e-6*wantTotal {
		t.Errorf("TotalData = %v, want %v", net.TotalData(), wantTotal)
	}
	if _, _, err := GenerateWithDevices(p, -1, 0, rng.New(1)); err == nil {
		t.Error("negative multiplier accepted")
	}
}

func TestPaperScaleNetworkIsSparse(t *testing.T) {
	// The paper's premise: 500 nodes with 50 m range in 1 km² do not form
	// one connected component, so multi-hop relay to a base station fails.
	net, err := Generate(DefaultGenParams(), rng.New(2026))
	if err != nil {
		t.Fatal(err)
	}
	if c := net.ConnectedComponents(); c < 2 {
		t.Errorf("expected a sparse (disconnected) network, got %d components", c)
	}
}

func TestGenerateClustered(t *testing.T) {
	p := ClusterParams{GenParams: DefaultGenParams(), NumClusters: 4, ClusterRadius: 40}
	p.NumSensors = 200
	net, err := GenerateClustered(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.Sensors) != 200 {
		t.Fatalf("sensor count %d", len(net.Sensors))
	}
	// Clustering signature: the mean nearest-neighbour distance must be
	// far below the uniform field's (200 sensors in 1 km² uniform → ≈35 m;
	// clustered in 4 spots of radius 40 → a few metres).
	mean := meanNearestNeighbour(net)
	uniform, err := Generate(p.GenParams, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if uniformMean := meanNearestNeighbour(uniform); mean > uniformMean/2 {
		t.Errorf("clustered NN distance %v not far below uniform %v", mean, uniformMean)
	}
	// Determinism.
	net2, _ := GenerateClustered(p, rng.New(5))
	if net.Sensors[0] != net2.Sensors[0] {
		t.Error("not deterministic")
	}
}

func meanNearestNeighbour(net *Network) float64 {
	idx := net.Index()
	var sum float64
	for i, s := range net.Sensors {
		best := math.Inf(1)
		for _, j := range idx.Within(s.Pos, net.CommRange*4) {
			if j != i {
				if d := net.Sensors[j].Pos.Dist(s.Pos); d < best {
					best = d
				}
			}
		}
		if math.IsInf(best, 1) {
			best = net.CommRange * 4
		}
		sum += best
	}
	return sum / float64(len(net.Sensors))
}

func TestGenerateClusteredErrors(t *testing.T) {
	p := ClusterParams{GenParams: DefaultGenParams(), NumClusters: 0, ClusterRadius: 40}
	if _, err := GenerateClustered(p, rng.New(1)); err == nil {
		t.Error("0 clusters accepted")
	}
	p.NumClusters = 2
	p.ClusterRadius = 0
	if _, err := GenerateClustered(p, rng.New(1)); err == nil {
		t.Error("0 radius accepted")
	}
	p.ClusterRadius = 10
	p.Side = -1
	if _, err := GenerateClustered(p, rng.New(1)); err == nil {
		t.Error("bad base params accepted")
	}
}
