package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"maps"
	"slices"
	"sync"
	"testing"
	"time"

	"uavdc"
)

// gatedServer builds a server whose planner blocks until gate closes and
// signals each execution start on entered.
func gatedServer(workers, queue int) (s *Server, gate chan struct{}, entered chan string) {
	gate = make(chan struct{})
	entered = make(chan string, 64)
	s = New(Config{Workers: workers, QueueSize: queue,
		planFn: func(key string, r Request, tr *uavdc.Trace) ([]byte, error) {
			entered <- key
			<-gate
			return []byte(key + "\n"), nil
		}})
	return s, gate, entered
}

// decodeErrorBody parses and schema-checks a uavdc-serve/1 error body.
func decodeErrorBody(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, body)
	}
	if eb.Schema != Schema {
		t.Fatalf("error body schema %q, want %q", eb.Schema, Schema)
	}
	if eb.Error.Message == "" {
		t.Fatal("error body has no message")
	}
	if !bytes.HasSuffix(body, []byte("\n")) {
		t.Fatal("error body is not newline-terminated")
	}
	return eb
}

// counterDelta returns after-minus-before for every counter present in
// either snapshot.
func counterDelta(before, after map[string]int64) map[string]int64 {
	d := map[string]int64{}
	for name, n := range after {
		if n-before[name] != 0 {
			d[name] = n - before[name]
		}
	}
	return d
}

// TestFailureModes drives the three failure paths — queue-full
// backpressure, deadline expiry mid-plan, and graceful-shutdown
// rejection — through one table. Each case gets a fresh gated server
// with one worker and a one-slot queue, saturates it (request A runs,
// request B queued), runs its probe, and asserts the probe's status,
// error code, and exact serve.* counter deltas; then the gate opens and
// the saturating flights must all land with status 200.
func TestFailureModes(t *testing.T) {
	cases := []struct {
		name       string
		probe      func(t *testing.T, s *Server) Outcome
		wantStatus int
		wantCode   string
		wantDelta  map[string]int64
		// after runs once the gate has opened and the saturating
		// flights have landed.
		after func(t *testing.T, s *Server)
	}{
		{
			name: "queue full rejects with backpressure",
			probe: func(t *testing.T, s *Server) Outcome {
				return s.Do(context.Background(), testRequest(3))
			},
			wantStatus: 503,
			wantCode:   ErrBackpressure,
			wantDelta:  map[string]int64{CounterRequests: 1, CounterRejected: 1},
		},
		{
			name: "deadline expires mid-plan",
			probe: func(t *testing.T, s *Server) Outcome {
				// Join request A's in-flight computation with a deadline
				// that expires while the planner is still gated.
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				defer cancel()
				return s.Do(ctx, testRequest(1))
			},
			wantStatus: 504,
			wantCode:   ErrTimeout,
			wantDelta:  map[string]int64{CounterRequests: 1, CounterCoalesced: 1, CounterTimeouts: 1},
			after: func(t *testing.T, s *Server) {
				// The abandoned flight still landed and filled the cache.
				out := s.Do(context.Background(), testRequest(1))
				if out.Cache != "hit" || out.Status != 200 {
					t.Fatalf("retry after timeout: cache=%q status=%d, want warm hit", out.Cache, out.Status)
				}
			},
		},
		{
			name: "shutdown rejects new work while draining",
			probe: func(t *testing.T, s *Server) Outcome {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				// Close blocks on the gated flights; probe mid-drain.
				go s.Close(context.Background())
				_ = s.Close(ctx) // second Close is a no-op, returns when drained or ctx expires
				return s.Do(context.Background(), testRequest(3))
			},
			wantStatus: 503,
			wantCode:   ErrShuttingDown,
			wantDelta:  map[string]int64{CounterRequests: 1, CounterRejected: 1},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, gate, entered := gatedServer(1, 1)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := s.Close(ctx); err != nil {
					t.Fatalf("drain: %v", err)
				}
			}()

			// Saturate: A occupies the worker, B fills the queue slot.
			var wg sync.WaitGroup
			satOut := make([]Outcome, 2)
			wg.Add(1)
			go func() { defer wg.Done(); satOut[0] = s.Do(context.Background(), testRequest(1)) }()
			<-entered // A is running
			wg.Add(1)
			go func() { defer wg.Done(); satOut[1] = s.Do(context.Background(), testRequest(2)) }()
			waitQueueDepth(t, s, 1) // B is queued

			before := s.Snapshot().Counters
			out := tc.probe(t, s)
			delta := counterDelta(before, s.Snapshot().Counters)

			if out.Status != tc.wantStatus {
				t.Fatalf("probe status = %d, want %d (body %s)", out.Status, tc.wantStatus, out.Body)
			}
			if eb := decodeErrorBody(t, out.Body); eb.Error.Code != tc.wantCode {
				t.Fatalf("error code = %q, want %q", eb.Error.Code, tc.wantCode)
			}
			for _, name := range slices.Sorted(maps.Keys(tc.wantDelta)) {
				if want := tc.wantDelta[name]; delta[name] != want {
					t.Errorf("Δ%s = %d, want %d (full delta %v)", name, delta[name], want, delta)
				}
			}
			for _, name := range slices.Sorted(maps.Keys(delta)) {
				if _, ok := tc.wantDelta[name]; !ok {
					t.Errorf("unexpected counter movement: Δ%s = %d", name, delta[name])
				}
			}

			// Drain: the saturating flights land and their waiters see
			// complete responses.
			close(gate)
			wg.Wait()
			for i, o := range satOut {
				if o.Status != 200 {
					t.Errorf("saturating request %d: status %d, want 200 after drain", i, o.Status)
				}
			}
			if tc.after != nil {
				tc.after(t, s)
			}
		})
	}
}

// waitQueueDepth polls until the worker queue holds want flights.
func waitQueueDepth(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d, want %d", s.QueueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseIdempotentAndHitsDuringDrain: Close twice is safe, and cached
// plans keep serving while the pool drains.
func TestCloseIdempotentAndHitsDuringDrain(t *testing.T) {
	s := New(Config{planFn: func(key string, r Request, tr *uavdc.Trace) ([]byte, error) {
		return []byte(key + "\n"), nil
	}})
	warm := s.Do(context.Background(), testRequest(1))
	if warm.Status != 200 {
		t.Fatalf("warmup failed: %d", warm.Status)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	hit := s.Do(context.Background(), testRequest(1))
	if hit.Status != 200 || hit.Cache != "hit" {
		t.Fatalf("cached plan not served after close: status=%d cache=%q", hit.Status, hit.Cache)
	}
	miss := s.Do(context.Background(), testRequest(2))
	if miss.Status != 503 {
		t.Fatalf("new work accepted after close: %d", miss.Status)
	}
	if eb := decodeErrorBody(t, miss.Body); eb.Error.Code != ErrShuttingDown {
		t.Fatalf("error code = %q, want %q", eb.Error.Code, ErrShuttingDown)
	}
}
