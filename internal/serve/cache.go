package serve

import "sync"

// lruCache is a bounded map from cache key to encoded response body with
// least-recently-used eviction. A Get refreshes recency. The zero value is
// not usable; call newLRU.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*lruEntry
	// head is most recent, tail least recent, in a doubly linked list
	// threaded through the entries.
	head, tail *lruEntry
	evictions  int64
}

type lruEntry struct {
	key        string
	body       []byte
	prev, next *lruEntry
}

// newLRU returns an empty cache holding at most capacity entries;
// capacity ≤ 0 disables caching (every Get misses, every Put drops).
func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, items: make(map[string]*lruEntry)}
}

// Get returns the cached body and refreshes the entry's recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.pushFront(e)
	return e.body, true
}

// Put inserts or refreshes the entry, evicting from the tail when full.
// It returns the number of entries evicted (0 or 1).
func (c *lruCache) Put(key string, body []byte) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.body = body
		c.unlink(e)
		c.pushFront(e)
		return 0
	}
	e := &lruEntry{key: key, body: body}
	c.items[key] = e
	c.pushFront(e)
	evicted := 0
	for len(c.items) > c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.items, victim.key)
		evicted++
	}
	c.evictions += int64(evicted)
	return evicted
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
