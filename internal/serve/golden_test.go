package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenCompare applies the repo's golden-file flow: -update rewrites,
// otherwise byte-compare.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- want\n%s--- got\n%s", name, want, got)
	}
}

// goldenRequest is the fixed tiny instance all serve goldens use.
func goldenRequest() Request {
	req := testRequest(7)
	req.Options = OptionsSpec{Algorithm: "greedy", K: 2}
	return req
}

// TestGoldenRequestJSON locks the uavdc-serve/1 request wire format.
func TestGoldenRequestJSON(t *testing.T) {
	b, err := json.MarshalIndent(goldenRequest(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "request.golden", append(b, '\n'))
}

// TestGoldenResponseJSON locks the uavdc-serve/1 response wire format —
// and, because the golden is committed, doubles as a cross-machine
// determinism check on the planner output it embeds. The served body
// must equal both the golden and a direct uavdc.Plan call.
func TestGoldenResponseJSON(t *testing.T) {
	req := goldenRequest()
	s := New(Config{})
	defer s.Close(context.Background())
	out := s.Do(context.Background(), req)
	if out.Status != 200 {
		t.Fatalf("status %d: %s", out.Status, out.Body)
	}
	if want := directBody(t, req); !bytes.Equal(out.Body, want) {
		t.Fatal("served body differs from the direct plan")
	}
	goldenCompare(t, "response.golden", out.Body)
}

// TestGoldenErrorBodyJSON locks the uavdc-serve/1 error wire format.
func TestGoldenErrorBodyJSON(t *testing.T) {
	goldenCompare(t, "error.golden", encodeError(ErrBackpressure, "queue full (64 pending)"))
}

// wallLines matches the metric lines whose values are wall-clock and
// therefore normalized before golden comparison.
var wallLines = regexp.MustCompile(`(?m)^(serve\.latency\.seconds) .*$`)

// TestGoldenMetrics locks the /metrics text after a fixed request
// sequence: one miss, one hit, one bad request. Every line is
// deterministic except the latency histogram, which is normalized.
func TestGoldenMetrics(t *testing.T) {
	req := goldenRequest()
	s := New(Config{})
	defer s.Close(context.Background())
	s.Do(context.Background(), req) // miss
	s.Do(context.Background(), req) // hit
	bad := req
	bad.Schema = "nope/9"
	s.Do(context.Background(), bad) // bad request

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	got := wallLines.ReplaceAll(buf.Bytes(), []byte("$1 <wall>"))
	goldenCompare(t, "metrics.golden", got)
}
