package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// maxRequestBytes bounds a /plan request body (a 100k-sensor field is
// ~6 MB of JSON).
const maxRequestBytes = 32 << 20

// Handler returns the daemon's HTTP surface:
//
//	POST /plan     uavdc-serve/1 request → uavdc-serve/1 response
//	GET  /metrics  obs counter/timer/histogram text + queue depth
//	GET  /healthz  liveness probe
//
// Response bodies are a pure function of the canonical instance; the
// request-scoped envelope rides in headers: Uavdc-Cache (hit, miss,
// coalesced), Uavdc-Key, and Uavdc-Elapsed-Us.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeBody(w, http.StatusMethodNotAllowed, encodeError(ErrBadRequest, "use POST"))
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeBody(w, http.StatusBadRequest, encodeError(ErrBadRequest, fmt.Sprintf("decode request: %v", err)))
		return
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	out := s.Do(ctx, req)
	if out.Cache != "" {
		w.Header().Set("Uavdc-Cache", out.Cache)
	}
	if out.Key != "" {
		w.Header().Set("Uavdc-Key", out.Key)
	}
	w.Header().Set("Uavdc-Elapsed-Us", strconv.FormatInt(out.Elapsed.Microseconds(), 10))
	writeBody(w, out.Status, out.Body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// The snapshot write cannot fail on an http.ResponseWriter in any
	// way a handler could recover from.
	_ = s.WriteMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// writeBody sends a JSON body with the given status.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
