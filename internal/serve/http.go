package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"uavdc/internal/oplog"
)

// maxRequestBytes bounds a /plan request body (a 100k-sensor field is
// ~6 MB of JSON).
const maxRequestBytes = 32 << 20

// Handler returns the daemon's HTTP surface:
//
//	POST /plan           uavdc-serve/1 request → uavdc-serve/1 response
//	GET  /metrics        obs counter/gauge/histogram text
//	GET  /healthz        uavdc-health/1 JSON (uptime, drain state, cache, queue)
//	GET  /debug/window   uavdc-window/1 JSON over the trailing ?s= seconds
//	GET  /debug/runtime  uavdc-runtime/1 JSON (heap, GC, goroutines)
//	GET  /debug/oplog    uavdc-oplog/1 JSONL of recent records, ?after= for tailing
//
// Response bodies are a pure function of the canonical instance; the
// request-scoped envelope rides in headers: Uavdc-Cache (hit, miss,
// coalesced), Uavdc-Key, and Uavdc-Elapsed-Us.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/window", s.handleWindow)
	mux.HandleFunc("/debug/runtime", s.handleRuntime)
	mux.HandleFunc("/debug/oplog", s.handleOplog)
	return mux
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeBody(w, http.StatusMethodNotAllowed, encodeError(ErrBadRequest, "use POST"))
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeBody(w, http.StatusBadRequest, encodeError(ErrBadRequest, fmt.Sprintf("decode request: %v", err)))
		return
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	out := s.Do(ctx, req)
	if out.Cache != "" {
		w.Header().Set("Uavdc-Cache", out.Cache)
	}
	if out.Key != "" {
		w.Header().Set("Uavdc-Key", out.Key)
	}
	w.Header().Set("Uavdc-Elapsed-Us", strconv.FormatInt(out.Elapsed.Microseconds(), 10))
	writeBody(w, out.Status, out.Body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// The snapshot write cannot fail on an http.ResponseWriter in any
	// way a handler could recover from.
	_ = s.WriteMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Always 200: drain state is data for the prober, not liveness.
	writeJSON(w, s.Health())
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	window := 60 * time.Second
	if q := r.URL.Query().Get("s"); q != "" {
		secs, err := strconv.Atoi(q)
		if err != nil || secs <= 0 {
			writeBody(w, http.StatusBadRequest, encodeError(ErrBadRequest, "s must be a positive integer of seconds"))
			return
		}
		window = time.Duration(secs) * time.Second
	}
	writeJSON(w, s.WindowStats(window))
}

func (s *Server) handleRuntime(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ReadRuntimeStats())
}

func (s *Server) handleOplog(w http.ResponseWriter, r *http.Request) {
	var after int64
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n < 0 {
			writeBody(w, http.StatusBadRequest, encodeError(ErrBadRequest, "after must be a non-negative sequence number"))
			return
		}
		after = n
	}
	w.Header().Set("Content-Type", "application/jsonl")
	enc := json.NewEncoder(w)
	// A broken client connection cannot be recovered from in a handler;
	// encode errors are deliberately dropped.
	_ = enc.Encode(oplog.Header{Schema: oplog.Schema})
	for _, rec := range s.OpLogSince(after) {
		_ = enc.Encode(rec)
	}
}

// writeJSON sends v as a compact JSON body with a trailing newline.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	// Encoding a flat struct onto a ResponseWriter cannot fail in any way
	// a handler could recover from.
	_ = enc.Encode(v)
}

// writeBody sends a JSON body with the given status.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
