package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uavdc"
)

// postPlan sends one request and returns the response with its body
// read.
func postPlan(t *testing.T, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/plan", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHTTPPlanParityAndHeaders(t *testing.T) {
	s := New(Config{})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := testRequest(1)
	want := directBody(t, req)

	cold, coldBody := postPlan(t, ts.URL, req)
	if cold.StatusCode != 200 || cold.Header.Get("Uavdc-Cache") != "miss" {
		t.Fatalf("cold: status=%d cache=%q", cold.StatusCode, cold.Header.Get("Uavdc-Cache"))
	}
	warm, warmBody := postPlan(t, ts.URL, req)
	if warm.StatusCode != 200 || warm.Header.Get("Uavdc-Cache") != "hit" {
		t.Fatalf("warm: status=%d cache=%q", warm.StatusCode, warm.Header.Get("Uavdc-Cache"))
	}
	if !bytes.Equal(coldBody, want) || !bytes.Equal(warmBody, want) {
		t.Fatal("HTTP bodies differ from the direct plan")
	}
	if cold.Header.Get("Uavdc-Key") != warm.Header.Get("Uavdc-Key") || cold.Header.Get("Uavdc-Key") == "" {
		t.Fatal("Uavdc-Key header missing or unstable")
	}
	if cold.Header.Get("Uavdc-Elapsed-Us") == "" {
		t.Fatal("Uavdc-Elapsed-Us header missing")
	}
	if ct := cold.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestHTTPPlanRejections(t *testing.T) {
	s := New(Config{})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /plan: %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/plan", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, body); eb.Error.Code != ErrBadRequest {
		t.Fatalf("code %q, want %q", eb.Error.Code, ErrBadRequest)
	}
}

func TestHTTPDeadline(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Timeout: 20 * time.Millisecond,
		planFn: func(key string, r Request, tr *uavdc.Trace) ([]byte, error) {
			<-gate
			return []byte(key + "\n"), nil
		}})
	defer s.Close(context.Background())
	defer close(gate) // deferred after Close so the gate opens first and the drain can finish
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postPlan(t, ts.URL, testRequest(1))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, body); eb.Error.Code != ErrTimeout {
		t.Fatalf("code %q, want %q", eb.Error.Code, ErrTimeout)
	}
}

func TestHTTPMetricsAndHealthz(t *testing.T) {
	s := New(Config{})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postPlan(t, ts.URL, testRequest(1))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"serve.requests 1", "serve.misses 1", "serve.queue_depth 0", "serve.latency.seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz body is not JSON: %v\n%s", err, body)
	}
	if h.Schema != HealthSchema || h.Status != "ok" || h.Draining {
		t.Fatalf("/healthz = %+v, want healthy %s body", h, HealthSchema)
	}
	if h.CacheLen != 1 || h.UptimeS <= 0 {
		t.Fatalf("/healthz cache/uptime = %+v", h)
	}
}

// TestTraceStreaming: every request streams a serve/request span, and a
// miss additionally streams the planner's phase spans.
func TestTraceStreaming(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{TraceWriter: &buf, StripTimes: true})
	defer s.Close(context.Background())
	req := testRequest(1)
	s.Do(context.Background(), req) // miss: request span + plan spans
	s.Do(context.Background(), req) // hit: request span only

	out := buf.String()
	if n := strings.Count(out, `"serve/request"`); n < 4 { // begin+end per request
		t.Fatalf("expected 2 serve/request spans (4 records), got %d mentions:\n%s", n, out)
	}
	if !strings.Contains(out, `"plan/alg3"`) {
		t.Fatalf("planner phase spans not streamed:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSONL trace line %q: %v", line, err)
		}
	}
}
