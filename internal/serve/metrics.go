package serve

// Canonical serve.* instrumentation names. Registered in
// internal/obs/names.go and documented in EXPERIMENTS.md; the uavlint
// obsnames analyzer cross-checks every recording site below against that
// registry.
const (
	// CounterRequests counts every request reaching Server.Do, whatever
	// its outcome.
	CounterRequests = "serve.requests"
	// CounterHits counts requests answered from the plan cache.
	CounterHits = "serve.hits"
	// CounterMisses counts requests that opened a new planner flight.
	CounterMisses = "serve.misses"
	// CounterCoalesced counts requests that joined an in-flight
	// identical computation instead of planning again.
	CounterCoalesced = "serve.coalesced"
	// CounterRejected counts requests refused because the worker queue
	// was full (backpressure) or the server was draining.
	CounterRejected = "serve.rejected"
	// CounterTimeouts counts waiters whose deadline expired before their
	// flight landed; the flight keeps running and still fills the cache.
	CounterTimeouts = "serve.timeouts"
	// CounterErrors counts flights whose planner returned an error.
	CounterErrors = "serve.errors"
	// CounterPlans counts actual planner executions — the coalescing
	// property tests assert exactly one per distinct key.
	CounterPlans = "serve.plans"
	// CounterEvictions counts LRU cache evictions.
	CounterEvictions = "serve.evictions"
	// CounterOplogRecords counts op-log records accepted by the async
	// writer (only meaningful when Config.OpLog is set).
	CounterOplogRecords = "serve.oplog.records"
	// CounterOplogDropped counts op-log records dropped because the
	// writer's buffer was full — the cost of never letting a slow log
	// sink backpressure planning.
	CounterOplogDropped = "serve.oplog.dropped"
	// CounterWindowSamples counts rolling-window samples taken, by the
	// background sampler or manual Sample calls.
	CounterWindowSamples = "serve.window.samples"
	// HistLatency is the wall-clock request latency histogram. The
	// obs.WallSuffix name keeps it out of determinism comparisons,
	// exactly like Timers.
	HistLatency = "serve.latency.seconds"
	// SpanRequest is the per-request trace span streamed to the
	// configured trace writer.
	SpanRequest = "serve/request"
	// GaugeQueueDepth is the instantaneous worker-queue depth, registered
	// as an obs.Gauge and refreshed on every metrics render and window
	// sample.
	GaugeQueueDepth = "serve.queue_depth"
)

// latencyBuckets are the serve.latency.seconds boundaries, chosen around
// the reduced-preset plan time (~10 ms) with decade coverage both ways.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}
