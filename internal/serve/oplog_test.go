package serve

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"uavdc"
	"uavdc/internal/oplog"
)

// failMarker selects the request whose planner flight fails in the
// golden sequence.
const failMarker = 99

// oplogSequence drives the fixed request sequence the op-log golden
// locks: miss, hit, evicting miss, bad request, planner error, and a
// final hit — sequentially, so cache-length and eviction fields are
// deterministic.
func oplogSequence(t *testing.T, s *Server) {
	t.Helper()
	ctx := context.Background()
	ra, rb, rc := testRequest(1), testRequest(2), testRequest(3)
	rc.Options.K = failMarker
	bad := testRequest(1)
	bad.Schema = "nope/9"

	wantStatus := func(out Outcome, want int) {
		t.Helper()
		if out.Status != want {
			t.Fatalf("sequence status = %d, want %d (%s)", out.Status, want, out.Body)
		}
	}
	wantStatus(s.Do(ctx, ra), 200)  // miss
	wantStatus(s.Do(ctx, ra), 200)  // hit
	wantStatus(s.Do(ctx, rb), 200)  // miss, evicts ra (CacheSize 1)
	wantStatus(s.Do(ctx, bad), 400) // error, no key
	wantStatus(s.Do(ctx, rc), 500)  // planner error, not cached
	wantStatus(s.Do(ctx, rb), 200)  // hit
}

// stubPlanner is the deterministic test planner for op-log tests: the
// body is the key, and the failMarker request fails.
func stubPlanner(key string, r Request, tr *uavdc.Trace) ([]byte, error) {
	if r.Options.K == failMarker {
		return nil, fmt.Errorf("marked to fail")
	}
	return []byte(key + "\n"), nil
}

// TestOpLogGoldenAcrossGOMAXPROCS is the determinism acceptance gate:
// the stripped op-log of a fixed sequential request sequence is
// byte-identical at GOMAXPROCS 1, 4, and 8, and locked by a golden.
func TestOpLogGoldenAcrossGOMAXPROCS(t *testing.T) {
	streams := map[int][]byte{}
	for _, procs := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			var buf bytes.Buffer
			s := New(Config{CacheSize: 1, OpLog: &buf, OpLogStrip: true, planFn: stubPlanner})
			oplogSequence(t, s)
			if err := s.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
			streams[procs] = append([]byte(nil), buf.Bytes()...)
		})
	}
	if !bytes.Equal(streams[1], streams[4]) || !bytes.Equal(streams[1], streams[8]) {
		t.Fatalf("stripped op-log differs across GOMAXPROCS:\n1:\n%s4:\n%s8:\n%s",
			streams[1], streams[4], streams[8])
	}
	goldenCompare(t, "oplog.golden", streams[1])
}

// TestOpLogRecordsSemantics decodes the stream of the golden sequence
// and checks each record's disposition, status, cache length, and
// eviction attribution.
func TestOpLogRecordsSemantics(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{CacheSize: 1, OpLog: &buf, planFn: stubPlanner})
	oplogSequence(t, s)
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	hdr, recs, err := oplog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Strip {
		t.Fatal("unstripped stream marked stripped")
	}
	want := []struct {
		disp     string
		status   int
		cacheLen int
		evicted  int
		hasKey   bool
	}{
		{oplog.DispMiss, 200, 1, 0, true},
		{oplog.DispHit, 200, 1, 0, true},
		{oplog.DispMiss, 200, 1, 1, true}, // rb evicted ra
		{oplog.DispError, 400, 1, 0, false},
		{oplog.DispError, 500, 1, 0, true}, // planner failure, nothing cached
		{oplog.DispHit, 200, 1, 0, true},
	}
	if len(recs) != len(want) {
		t.Fatalf("%d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		r := recs[i]
		if r.Seq != int64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Disp != w.disp || r.Status != w.status || r.CacheLen != w.cacheLen || r.Evicted != w.evicted {
			t.Errorf("record %d = %+v, want disp=%s status=%d cache=%d evicted=%d",
				i, r, w.disp, w.status, w.cacheLen, w.evicted)
		}
		if (r.Key != "") != w.hasKey {
			t.Errorf("record %d: key presence %v, want %v", i, r.Key != "", w.hasKey)
		}
		if r.ElapsedS <= 0 {
			t.Errorf("record %d: elapsed %g, want > 0 in an unstripped stream", i, r.ElapsedS)
		}
		if (w.disp == oplog.DispMiss || w.status == 500) && r.Worker == 0 {
			t.Errorf("record %d: flight record lost its worker id", i)
		}
		if w.disp == oplog.DispHit && r.Worker != 0 {
			t.Errorf("record %d: hit carries worker %d, want 0", i, r.Worker)
		}
	}
}

// TestOpLogStalledWriterNeverBlocksDo is the backpressure acceptance
// gate: with the op-log sink wedged, requests complete promptly and the
// only op-log movement is serve.oplog.dropped (plus the records that fit
// the buffer before the stall).
func TestOpLogStalledWriterNeverBlocksDo(t *testing.T) {
	sink := &gatedSink{gate: make(chan struct{})}
	s := New(Config{OpLog: sink, OpLogBuffer: 2, planFn: stubPlanner})

	before := s.Snapshot().Counters
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if out := s.Do(context.Background(), testRequest(uint64(i+1))); out.Status != 200 {
				t.Errorf("request %d: status %d", i, out.Status)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Do blocked behind the stalled op-log writer")
	}
	delta := counterDelta(before, s.Snapshot().Counters)
	if delta[CounterOplogRecords] != 2 {
		t.Errorf("Δserve.oplog.records = %d, want the buffer capacity 2", delta[CounterOplogRecords])
	}
	if delta[CounterOplogDropped] != 8 {
		t.Errorf("Δserve.oplog.dropped = %d, want 8", delta[CounterOplogDropped])
	}

	close(sink.gate)
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, recs, err := oplog.Read(bytes.NewReader(sink.bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("drained %d records, want the 2 accepted", len(recs))
	}
}

// gatedSink blocks every Write until the gate opens, then appends to an
// internal buffer — a stalled op-log sink.
type gatedSink struct {
	gate chan struct{}
	mu   sync.Mutex
	buf  bytes.Buffer
}

func (g *gatedSink) Write(p []byte) (int, error) {
	<-g.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

func (g *gatedSink) bytes() []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]byte(nil), g.buf.Bytes()...)
}

// TestOpLogRingServesRecentRecords: the in-memory ring behind
// /debug/oplog retains records independent of any configured sink and
// filters by sequence number.
func TestOpLogRingServesRecentRecords(t *testing.T) {
	s := New(Config{CacheSize: 1, planFn: stubPlanner}) // no OpLog sink
	oplogSequence(t, s)
	defer s.Close(context.Background())

	recs := s.OpLogSince(0)
	if len(recs) != 6 {
		t.Fatalf("ring holds %d records, want 6", len(recs))
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Fatalf("ring order broken: record %d has seq %d", i, r.Seq)
		}
	}
	tail := s.OpLogSince(4)
	if len(tail) != 2 || tail[0].Seq != 5 || tail[1].Seq != 6 {
		t.Fatalf("OpLogSince(4) = %+v, want seqs 5,6", tail)
	}
	if n := s.Snapshot().Counters[CounterOplogRecords]; n != 0 {
		t.Errorf("serve.oplog.records = %d without a sink, want 0", n)
	}
}

// TestOpLogSeqJoinsTraceStream: the op-log record's seq appears as the
// serve/request span's "req" attribute, joining the two streams.
func TestOpLogSeqJoinsTraceStream(t *testing.T) {
	var traces bytes.Buffer
	s := New(Config{TraceWriter: &traces, StripTimes: true, planFn: stubPlanner})
	s.Do(context.Background(), testRequest(1))
	s.Do(context.Background(), testRequest(1))
	defer s.Close(context.Background())

	recs := s.OpLogSince(0)
	if len(recs) != 2 {
		t.Fatalf("%d op-log records, want 2", len(recs))
	}
	out := traces.String()
	for _, r := range recs {
		if want := fmt.Sprintf(`"req":%d`, r.Seq); !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("trace stream lacks %s for op-log record %d:\n%s", want, r.Seq, out)
		}
	}
}
