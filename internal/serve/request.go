// Package serve is the planning-as-a-service layer: a concurrent daemon
// core that canonicalizes plan requests into content-addressed cache keys
// (uavdc.PlanKey over internal/canon), deduplicates identical in-flight
// requests, serves repeats from a bounded LRU plan cache, and runs misses
// through a worker pool with a bounded queue and explicit backpressure.
//
// The serving contract is bit-identity: a response body is a pure
// function of the canonical instance — the same bytes whether the request
// was planned cold, answered from the cache, or coalesced onto another
// request's flight, at any GOMAXPROCS. Anything request-scoped (cache
// disposition, elapsed time) travels in HTTP headers, never the body.
package serve

import (
	"encoding/json"
	"fmt"

	"uavdc"
	"uavdc/internal/wire"
)

// Schema tags every uavdc-serve/1 request and response body.
const Schema = wire.Serve

// SensorSpec is one sensor in the request field.
type SensorSpec struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	DataMB float64 `json:"data_mb"`
}

// ScenarioSpec mirrors uavdc.Scenario in the wire schema.
type ScenarioSpec struct {
	RegionSideM   float64      `json:"region_side_m"`
	DepotX        float64      `json:"depot_x"`
	DepotY        float64      `json:"depot_y"`
	Sensors       []SensorSpec `json:"sensors"`
	BandwidthMBps float64      `json:"bandwidth_mbps"`
	CoverRadiusM  float64      `json:"cover_radius_m"`
}

// UAVSpec mirrors uavdc.UAV in the wire schema.
type UAVSpec struct {
	HoverPowerW  float64 `json:"hover_power_w"`
	TravelPowerW float64 `json:"travel_power_w"`
	SpeedMS      float64 `json:"speed_ms"`
	CapacityJ    float64 `json:"capacity_j"`
	ClimbPowerW  float64 `json:"climb_power_w,omitempty"`
	ClimbRateMS  float64 `json:"climb_rate_ms,omitempty"`
}

// OptionsSpec mirrors the output-relevant uavdc.Options in the wire
// schema. Parallel and Trace are intentionally absent: they never change
// the plan, so they are server policy, not request identity.
type OptionsSpec struct {
	Algorithm    string  `json:"algorithm,omitempty"`
	DeltaM       float64 `json:"delta_m,omitempty"`
	K            int     `json:"k,omitempty"`
	AltitudeM    float64 `json:"altitude_m,omitempty"`
	ShannonRadio bool    `json:"shannon_radio,omitempty"`
	Refine       bool    `json:"refine,omitempty"`
}

// Request is one uavdc-serve/1 plan request.
type Request struct {
	Schema   string       `json:"schema"`
	Scenario ScenarioSpec `json:"scenario"`
	UAV      UAVSpec      `json:"uav"`
	Options  OptionsSpec  `json:"options"`
}

// StopSpec is one hovering stop of a planned tour in the wire schema.
type StopSpec struct {
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	SojournS    float64 `json:"sojourn_s"`
	CollectedMB float64 `json:"collected_mb"`
}

// ResultSpec mirrors uavdc.Result in the wire schema.
type ResultSpec struct {
	Algorithm       string     `json:"algorithm"`
	Stops           []StopSpec `json:"stops"`
	CollectedMB     float64    `json:"collected_mb"`
	EnergyJ         float64    `json:"energy_j"`
	FlightDistanceM float64    `json:"flight_distance_m"`
	HoverTimeS      float64    `json:"hover_time_s"`
	MissionTimeS    float64    `json:"mission_time_s"`
}

// Response is one uavdc-serve/1 plan response. Key is the content address
// of the canonical instance — the cache line the plan lives in.
type Response struct {
	Schema string     `json:"schema"`
	Key    string     `json:"key"`
	Result ResultSpec `json:"result"`
}

// Error codes of the uavdc-serve/1 error body.
const (
	// ErrBadRequest: the body is not a valid uavdc-serve/1 request, or
	// the instance fails validation.
	ErrBadRequest = "bad_request"
	// ErrBackpressure: the worker queue is full; retry later.
	ErrBackpressure = "backpressure"
	// ErrShuttingDown: the server is draining and accepts no new work.
	ErrShuttingDown = "shutting_down"
	// ErrTimeout: the request's deadline expired before its flight
	// landed. The plan keeps computing and fills the cache for retries.
	ErrTimeout = "timeout"
	// ErrPlanFailed: the planner rejected the instance.
	ErrPlanFailed = "plan_failed"
)

// ErrorBody is the uavdc-serve/1 error response.
type ErrorBody struct {
	Schema string      `json:"schema"`
	Error  ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable code and the human message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Scenario converts the wire field to the library type.
func (s ScenarioSpec) Scenario() uavdc.Scenario {
	sc := uavdc.Scenario{
		RegionSideM:   s.RegionSideM,
		DepotX:        s.DepotX,
		DepotY:        s.DepotY,
		BandwidthMBps: s.BandwidthMBps,
		CoverRadiusM:  s.CoverRadiusM,
		Sensors:       make([]uavdc.Sensor, len(s.Sensors)),
	}
	for i, sp := range s.Sensors {
		sc.Sensors[i] = uavdc.Sensor{X: sp.X, Y: sp.Y, DataMB: sp.DataMB}
	}
	return sc
}

// SpecOf converts a library scenario to the wire form.
func SpecOf(sc uavdc.Scenario) ScenarioSpec {
	out := ScenarioSpec{
		RegionSideM:   sc.RegionSideM,
		DepotX:        sc.DepotX,
		DepotY:        sc.DepotY,
		BandwidthMBps: sc.BandwidthMBps,
		CoverRadiusM:  sc.CoverRadiusM,
		Sensors:       make([]SensorSpec, len(sc.Sensors)),
	}
	for i, s := range sc.Sensors {
		out.Sensors[i] = SensorSpec{X: s.X, Y: s.Y, DataMB: s.DataMB}
	}
	return out
}

// UAV converts the wire energy model to the library type.
func (u UAVSpec) UAV() uavdc.UAV {
	return uavdc.UAV{
		HoverPowerW:  u.HoverPowerW,
		TravelPowerW: u.TravelPowerW,
		SpeedMS:      u.SpeedMS,
		CapacityJ:    u.CapacityJ,
		ClimbPowerW:  u.ClimbPowerW,
		ClimbRateMS:  u.ClimbRateMS,
	}
}

// UAVSpecOf converts a library energy model to the wire form.
func UAVSpecOf(u uavdc.UAV) UAVSpec {
	return UAVSpec{
		HoverPowerW:  u.HoverPowerW,
		TravelPowerW: u.TravelPowerW,
		SpeedMS:      u.SpeedMS,
		CapacityJ:    u.CapacityJ,
		ClimbPowerW:  u.ClimbPowerW,
		ClimbRateMS:  u.ClimbRateMS,
	}
}

// Options converts the wire options to the library type.
func (o OptionsSpec) Options() uavdc.Options {
	return uavdc.Options{
		Algorithm:    uavdc.Algorithm(o.Algorithm),
		DeltaM:       o.DeltaM,
		K:            o.K,
		AltitudeM:    o.AltitudeM,
		ShannonRadio: o.ShannonRadio,
		Refine:       o.Refine,
	}
}

// Validate checks the request's schema tag.
func (r Request) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("serve: schema %q, want %q", r.Schema, Schema)
	}
	return nil
}

// Key computes the request's content address via the shared canonical
// encoding. Invalid instances (unknown algorithm, empty field, bad energy
// model) are rejected here, before any queueing.
func (r Request) Key() (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	return uavdc.PlanKey(r.Scenario.Scenario(), r.UAV.UAV(), r.Options.Options())
}

// EncodeResult renders a planned result as the canonical response body:
// compact JSON plus a trailing newline. Byte-for-byte reproducibility of
// this encoding is what the cache and coalescing bit-identity contract
// rests on.
func EncodeResult(key string, res *uavdc.Result) ([]byte, error) {
	out := Response{Schema: Schema, Key: key, Result: ResultSpec{
		Algorithm:       res.Algorithm,
		Stops:           make([]StopSpec, len(res.Stops)),
		CollectedMB:     res.CollectedMB,
		EnergyJ:         res.EnergyJ,
		FlightDistanceM: res.FlightDistanceM,
		HoverTimeS:      res.HoverTimeS,
		MissionTimeS:    res.MissionTimeS,
	}}
	for i, st := range res.Stops {
		out.Result.Stops[i] = StopSpec{X: st.X, Y: st.Y, SojournS: st.SojournS, CollectedMB: st.CollectedMB}
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// encodeError renders a canonical error body.
func encodeError(code, message string) []byte {
	b, err := json.Marshal(ErrorBody{Schema: Schema, Error: ErrorDetail{Code: code, Message: message}})
	if err != nil {
		// Marshalling a flat struct of strings cannot fail.
		panic(err)
	}
	return append(b, '\n')
}
