package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"uavdc"
	"uavdc/internal/obs"
	"uavdc/internal/oplog"
	"uavdc/internal/trace"
)

// Config tunes a Server. The zero value selects the defaults noted on
// each field.
type Config struct {
	// CacheSize bounds the LRU plan cache in entries (default 1024);
	// negative disables caching.
	CacheSize int
	// Workers is the planner pool size (default 4).
	Workers int
	// QueueSize bounds the pending-flight queue (default 64). A full
	// queue rejects new misses with ErrBackpressure — backpressure is
	// explicit, never unbounded buffering.
	QueueSize int
	// Timeout is the per-request deadline the HTTP handler applies;
	// 0 disables it. Server.Do takes its deadline from the context, so
	// programmatic callers set their own.
	Timeout time.Duration
	// Obs receives the serve.* counters and the latency histogram
	// (default: a fresh registry, exposed on /metrics).
	Obs *obs.Registry
	// TraceWriter, when set, receives one uavdc-trace/1 JSONL span per
	// request plus the planner's phase spans for every miss.
	TraceWriter io.Writer
	// StripTimes omits wall-clock timestamps from the streamed trace,
	// making it byte-deterministic for a fixed request sequence.
	StripTimes bool
	// OpLog, when set, receives the uavdc-oplog/1 request operation log
	// through a bounded asynchronous writer: a slow sink drops records
	// (counted on serve.oplog.dropped) but never delays a request.
	OpLog io.Writer
	// OpLogBuffer bounds the op-log writer's record channel (default
	// oplog.DefaultBuffer).
	OpLogBuffer int
	// OpLogStrip zeroes the wall-clock and scheduling fields of every
	// op-log record, making the stream byte-deterministic for a fixed
	// sequential request sequence — the op-log mirror of StripTimes.
	OpLogStrip bool
	// SampleInterval runs the background window sampler every interval,
	// feeding the /debug/window ring; 0 disables it (Sample may still be
	// called manually, which is what deterministic tests do).
	SampleInterval time.Duration
	// WindowSize bounds the sample ring in samples (default 600 — ten
	// minutes at a one-second interval).
	WindowSize int

	// planFn overrides the planner in tests: it receives the cache key,
	// the request, and an optional flight recorder, and returns the
	// canonical response body. nil selects uavdc.Plan + EncodeResult.
	planFn func(key string, req Request, tr *uavdc.Trace) ([]byte, error)
}

// Outcome is the result of one Server.Do call: the canonical body, the
// HTTP status it maps to, and the request-scoped envelope (cache
// disposition, key, elapsed) that travels in headers, never the body.
type Outcome struct {
	// Status is the HTTP status: 200, or 4xx/5xx with an ErrorBody.
	Status int
	// Cache is the disposition: "hit", "miss", "coalesced", or "" when
	// the request never reached the cache (bad request, rejection).
	Cache string
	// Key is the content address, when the request was valid.
	Key string
	// Body is the response body, newline-terminated JSON.
	Body []byte
	// Elapsed is the wall-clock service time (non-deterministic).
	Elapsed time.Duration
	// Seq is the request's monotonic sequence number: the op-log record
	// id and the "req" attribute of the serve/request trace span, so the
	// two streams join.
	Seq int64
}

// flight is one in-progress planner execution; all requests for its key
// wait on done and read the same body. The op-log fields (worker,
// queueS, planS, evicted) are written by the worker before done closes
// and read by waiters only after it closes.
type flight struct {
	key      string
	req      Request
	done     chan struct{}
	status   int
	body     []byte
	enqueued time.Time
	worker   int
	queueS   float64
	planS    float64
	evicted  int
}

// Server is the daemon core: cache, singleflight table, and worker pool.
// Create with New, stop with Close. Safe for concurrent use.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *lruCache
	start time.Time

	mu       sync.Mutex
	closed   bool
	inflight map[string]*flight
	queue    chan *flight
	wg       sync.WaitGroup

	stop     chan struct{}
	stopOnce sync.Once

	traceMu sync.Mutex

	reqSeq atomic.Int64
	olw    *oplog.Writer
	opRing *oplogRing
	window *windowRing

	cRequests, cHits, cMisses, cCoalesced obs.Counter
	cRejected, cTimeouts, cErrors         obs.Counter
	cPlans, cEvictions                    obs.Counter
	cOplogRecords, cOplogDropped          obs.Counter
	cWindowSamples                        obs.Counter
	gQueueDepth                           obs.Gauge
	hLatency                              obs.Histogram
}

// New starts a server with cfg's worker pool running.
func New(cfg Config) *Server {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 600
	}
	if cfg.planFn == nil {
		cfg.planFn = defaultPlan
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Obs,
		cache:    newLRU(cfg.CacheSize),
		start:    time.Now(), //uavdc:allow nodeterminism health uptime is reported wall time, excluded from determinism comparisons
		inflight: make(map[string]*flight),
		queue:    make(chan *flight, cfg.QueueSize),
		stop:     make(chan struct{}),
		opRing:   newOplogRing(oplogRingSize),
		window:   newWindowRing(cfg.WindowSize, cfg.SampleInterval),

		cRequests:      cfg.Obs.Counter(CounterRequests),
		cHits:          cfg.Obs.Counter(CounterHits),
		cMisses:        cfg.Obs.Counter(CounterMisses),
		cCoalesced:     cfg.Obs.Counter(CounterCoalesced),
		cRejected:      cfg.Obs.Counter(CounterRejected),
		cTimeouts:      cfg.Obs.Counter(CounterTimeouts),
		cErrors:        cfg.Obs.Counter(CounterErrors),
		cPlans:         cfg.Obs.Counter(CounterPlans),
		cEvictions:     cfg.Obs.Counter(CounterEvictions),
		cOplogRecords:  cfg.Obs.Counter(CounterOplogRecords),
		cOplogDropped:  cfg.Obs.Counter(CounterOplogDropped),
		cWindowSamples: cfg.Obs.Counter(CounterWindowSamples),
		gQueueDepth:    cfg.Obs.Gauge(GaugeQueueDepth),
		hLatency:       cfg.Obs.Histogram(HistLatency, latencyBuckets),
	}
	if cfg.OpLog != nil {
		s.olw = oplog.NewWriter(cfg.OpLog, cfg.OpLogBuffer, cfg.OpLogStrip)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i + 1)
	}
	if cfg.SampleInterval > 0 {
		go s.sampler(cfg.SampleInterval)
	}
	return s
}

// defaultPlan is the production planner: uavdc.Plan plus the canonical
// response encoding.
func defaultPlan(key string, req Request, tr *uavdc.Trace) ([]byte, error) {
	opts := req.Options.Options()
	opts.Trace = tr
	res, err := uavdc.Plan(req.Scenario.Scenario(), req.UAV.UAV(), opts)
	if err != nil {
		return nil, err
	}
	return EncodeResult(key, res)
}

// Do services one request: cache lookup, in-flight coalescing, or a new
// planner flight through the worker queue. The context bounds how long
// the caller waits; an expired deadline abandons the wait but never the
// flight, which still lands and fills the cache.
func (s *Server) Do(ctx context.Context, req Request) Outcome {
	start := time.Now() //uavdc:allow nodeterminism request latency is reported wall time, excluded from determinism comparisons
	s.cRequests.Inc()
	out, f := s.do(ctx, req)
	out.Seq = s.reqSeq.Add(1)
	out.Elapsed = time.Since(start) //uavdc:allow nodeterminism request latency is reported wall time, excluded from determinism comparisons
	s.hLatency.Observe(out.Elapsed.Seconds())
	s.streamSpan(out)
	s.logRequest(out, f)
	return out
}

func (s *Server) do(ctx context.Context, req Request) (Outcome, *flight) {
	key, err := req.Key()
	if err != nil {
		return Outcome{Status: 400, Body: encodeError(ErrBadRequest, err.Error())}, nil
	}
	if body, ok := s.cache.Get(key); ok {
		s.cHits.Inc()
		return Outcome{Status: 200, Cache: "hit", Key: key, Body: body}, nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.cRejected.Inc()
		return Outcome{Status: 503, Key: key, Body: encodeError(ErrShuttingDown, "server is draining")}, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.cCoalesced.Inc()
		return s.wait(ctx, f, "coalesced"), f
	}
	// The flight may have landed between the cache miss and taking the
	// lock; re-check so a just-cached plan is not computed twice.
	if body, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.cHits.Inc()
		return Outcome{Status: 200, Cache: "hit", Key: key, Body: body}, nil
	}
	f := &flight{key: key, req: req, done: make(chan struct{}),
		enqueued: time.Now()} //uavdc:allow nodeterminism queue-wait is reported wall time, stripped from deterministic op-logs
	select {
	case s.queue <- f:
		s.inflight[key] = f
		s.mu.Unlock()
		s.cMisses.Inc()
		return s.wait(ctx, f, "miss"), f
	default:
		s.mu.Unlock()
		s.cRejected.Inc()
		return Outcome{Status: 503, Key: key, Body: encodeError(ErrBackpressure,
			fmt.Sprintf("queue full (%d pending)", s.cfg.QueueSize))}, nil
	}
}

// wait blocks until the flight lands or the context expires.
func (s *Server) wait(ctx context.Context, f *flight, disp string) Outcome {
	select {
	case <-f.done:
		return Outcome{Status: f.status, Cache: disp, Key: f.key, Body: f.body}
	case <-ctx.Done():
		s.cTimeouts.Inc()
		return Outcome{Status: 504, Cache: disp, Key: f.key,
			Body: encodeError(ErrTimeout, "deadline expired before the plan landed; it keeps computing and will be cached")}
	}
}

// worker drains the flight queue until Close closes it. Worker ids are
// 1-based; 0 in an op-log record means no worker was involved.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	for f := range s.queue {
		s.runFlight(f, id)
	}
}

// runFlight executes one planner flight and publishes its body. Every
// op-log field is written before done closes, so waiters reading them
// after the close race nothing.
func (s *Server) runFlight(f *flight, workerID int) {
	f.worker = workerID
	f.queueS = time.Since(f.enqueued).Seconds() //uavdc:allow nodeterminism queue-wait is reported wall time, stripped from deterministic op-logs
	var tr *uavdc.Trace
	if s.cfg.TraceWriter != nil {
		tr = uavdc.NewTrace()
	}
	s.cPlans.Inc()
	planStart := time.Now() //uavdc:allow nodeterminism plan wall time is reported, stripped from deterministic op-logs
	body, err := s.cfg.planFn(f.key, f.req, tr)
	f.planS = time.Since(planStart).Seconds() //uavdc:allow nodeterminism plan wall time is reported, stripped from deterministic op-logs
	if err != nil {
		s.cErrors.Inc()
		f.status, f.body = 500, encodeError(ErrPlanFailed, err.Error())
	} else {
		f.status, f.body = 200, body
		f.evicted = s.cache.Put(f.key, body)
		s.cEvictions.Add(int64(f.evicted))
	}
	s.mu.Lock()
	delete(s.inflight, f.key)
	s.mu.Unlock()
	close(f.done)
	s.streamPlanTrace(tr)
}

// disposition maps an outcome to its op-log disposition: failure
// statuses first, the cache disposition otherwise.
func disposition(out Outcome) string {
	switch {
	case out.Status == 503:
		return oplog.DispRejected
	case out.Status == 504:
		return oplog.DispTimeout
	case out.Status != 200:
		return oplog.DispError
	default:
		return out.Cache
	}
}

// logRequest feeds one completed request into the op-log ring and, when
// configured, the async op-log writer. Flight-scoped fields (worker,
// queue wait, plan time, evictions) are read only when the flight has
// landed — a timed-out waiter's flight is still running and its record
// carries none of them.
func (s *Server) logRequest(out Outcome, f *flight) {
	rec := oplog.Record{
		Seq:      out.Seq,
		Key:      out.Key,
		Disp:     disposition(out),
		Status:   out.Status,
		ElapsedS: out.Elapsed.Seconds(),
		CacheLen: s.cache.Len(),
	}
	if f != nil && out.Status != 504 {
		rec.QueueS, rec.PlanS, rec.Worker = f.queueS, f.planS, f.worker
		if out.Cache == "miss" {
			// The eviction is attributed once, to the flight's opener,
			// not to every coalesced waiter.
			rec.Evicted = f.evicted
		}
	}
	s.opRing.add(rec)
	if s.olw == nil {
		return
	}
	if s.olw.Record(rec) {
		s.cOplogRecords.Inc()
	} else {
		s.cOplogDropped.Inc()
	}
}

// streamSpan appends the request's serve/request span to the trace
// writer, one contiguous JSONL block per request.
func (s *Server) streamSpan(out Outcome) {
	if s.cfg.TraceWriter == nil {
		return
	}
	buf := trace.NewBuffer()
	end := buf.Begin(SpanRequest, trace.Str("key", out.Key), trace.Int("req", int(out.Seq)))
	end(trace.Str("cache", out.Cache), trace.Int("status", out.Status))
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	// An unwritable trace writer must not fail requests; the error is
	// deliberately dropped after the write attempt.
	_ = trace.WriteJSONL(s.cfg.TraceWriter, buf.Snapshot(), s.cfg.StripTimes)
}

// streamPlanTrace appends the planner's own phase spans for a miss.
func (s *Server) streamPlanTrace(tr *uavdc.Trace) {
	if tr == nil || s.cfg.TraceWriter == nil {
		return
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	_ = tr.WriteJSONL(s.cfg.TraceWriter, s.cfg.StripTimes)
}

// QueueDepth returns the number of flights waiting for a worker.
func (s *Server) QueueDepth() int { return len(s.queue) }

// CacheLen returns the number of cached plans.
func (s *Server) CacheLen() int { return s.cache.Len() }

// Snapshot returns the current obs totals.
func (s *Server) Snapshot() obs.Snapshot { return s.reg.Snapshot() }

// WriteMetrics renders the /metrics text: the obs snapshot's sorted
// "name value" lines. The queue-depth gauge is refreshed just before the
// snapshot so the rendered level is current.
func (s *Server) WriteMetrics(w io.Writer) error {
	s.gQueueDepth.Set(int64(s.QueueDepth()))
	_, err := s.reg.Snapshot().WriteTo(w)
	return err
}

// Close drains the server: new requests are rejected with
// ErrShuttingDown (cache hits are still served, and still logged), the
// background sampler stops, queued flights land, their waiters get
// responses, and the op-log writer flushes. It returns when the pool has
// drained and the op-log closed, or the context expires.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		// Only the transitioning Close touches the op-log writer: a
		// concurrent second Close must not stop it while the first is
		// still draining flights that will log.
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		if s.olw != nil {
			return s.olw.Close(ctx)
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}
