package serve

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"uavdc"
)

// testRequest builds a valid small request; distinct seeds give distinct
// cache keys.
func testRequest(seed uint64) Request {
	sc := uavdc.RandomScenario(12, 200, seed)
	return Request{
		Schema:   Schema,
		Scenario: SpecOf(sc),
		UAV:      UAVSpecOf(uavdc.DefaultUAV()),
	}
}

// directBody plans the request with a plain uavdc.Plan call — the
// bit-identity reference every serving path must reproduce.
func directBody(t *testing.T, req Request) []byte {
	t.Helper()
	key, err := req.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	res, err := uavdc.Plan(req.Scenario.Scenario(), req.UAV.UAV(), req.Options.Options())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	body, err := EncodeResult(key, res)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	return body
}

// counter reads one counter total from the server's registry.
func counter(s *Server, name string) int64 {
	return s.Snapshot().Counters[name]
}

// waitCounter polls until the counter reaches want or the deadline
// passes.
func waitCounter(t *testing.T, s *Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for counter(s, name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at %d, want ≥ %d", name, counter(s, name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestColdWarmCoalescedParity is the acceptance gate: cached, coalesced,
// and cold responses are byte-identical to a direct uavdc.Plan call, at
// GOMAXPROCS 1, 4, and 8, with exactly one planner execution per key.
// Run it under -race (the ci serve step does) and it doubles as the
// coalescing property test.
func TestColdWarmCoalescedParity(t *testing.T) {
	req := testRequest(1)
	want := directBody(t, req)
	for _, procs := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

			gate := make(chan struct{})
			entered := make(chan struct{}, 1)
			s := New(Config{Workers: 2, planFn: func(key string, r Request, tr *uavdc.Trace) ([]byte, error) {
				entered <- struct{}{}
				<-gate
				return defaultPlan(key, r, tr)
			}})
			defer s.Close(context.Background())

			const waiters = 8
			outs := make([]Outcome, waiters)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // the cold leader opens the flight
				defer wg.Done()
				outs[0] = s.Do(context.Background(), req)
			}()
			<-entered // the flight is on a worker and registered in-flight
			for i := 1; i < waiters; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					outs[i] = s.Do(context.Background(), req)
				}(i)
			}
			waitCounter(t, s, CounterCoalesced, waiters-1)
			close(gate)
			wg.Wait()

			for i, out := range outs {
				if out.Status != 200 {
					t.Fatalf("request %d: status %d, body %s", i, out.Status, out.Body)
				}
				if !bytes.Equal(out.Body, want) {
					t.Fatalf("request %d (%s): body differs from the direct plan", i, out.Cache)
				}
			}
			warm := s.Do(context.Background(), req)
			if warm.Cache != "hit" || !bytes.Equal(warm.Body, want) {
				t.Fatalf("warm request: cache=%q, body match=%v", warm.Cache, bytes.Equal(warm.Body, want))
			}

			if n := counter(s, CounterPlans); n != 1 {
				t.Errorf("serve.plans = %d, want exactly 1", n)
			}
			if n := counter(s, CounterMisses); n != 1 {
				t.Errorf("serve.misses = %d, want 1", n)
			}
			if n := counter(s, CounterCoalesced); n != waiters-1 {
				t.Errorf("serve.coalesced = %d, want %d", n, waiters-1)
			}
			if n := counter(s, CounterHits); n != 1 {
				t.Errorf("serve.hits = %d, want 1", n)
			}
			if n := counter(s, CounterRequests); n != waiters+1 {
				t.Errorf("serve.requests = %d, want %d", n, waiters+1)
			}
		})
	}
}

func TestDistinctInstancesDistinctPlans(t *testing.T) {
	s := New(Config{})
	defer s.Close(context.Background())
	a := s.Do(context.Background(), testRequest(1))
	b := s.Do(context.Background(), testRequest(2))
	if a.Status != 200 || b.Status != 200 {
		t.Fatalf("statuses %d/%d", a.Status, b.Status)
	}
	if a.Key == b.Key || bytes.Equal(a.Body, b.Body) {
		t.Fatal("distinct instances share a key or body")
	}
	if n := counter(s, CounterPlans); n != 2 {
		t.Fatalf("serve.plans = %d, want 2", n)
	}
}

func TestCacheEviction(t *testing.T) {
	s := New(Config{CacheSize: 1, planFn: func(key string, r Request, tr *uavdc.Trace) ([]byte, error) {
		return []byte(key + "\n"), nil
	}})
	defer s.Close(context.Background())
	ctx := context.Background()
	ra, rb := testRequest(1), testRequest(2)
	s.Do(ctx, ra)
	s.Do(ctx, rb) // evicts ra
	if n := counter(s, CounterEvictions); n != 1 {
		t.Fatalf("serve.evictions = %d, want 1", n)
	}
	if got := s.Do(ctx, ra); got.Cache != "miss" {
		t.Fatalf("evicted entry served as %q", got.Cache)
	}
	if got := s.Do(ctx, ra); got.Cache != "hit" {
		t.Fatalf("recached entry served as %q", got.Cache)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", s.CacheLen())
	}
}

func TestBadRequestNeverQueued(t *testing.T) {
	s := New(Config{})
	defer s.Close(context.Background())
	req := testRequest(1)
	req.Schema = "nope/9"
	out := s.Do(context.Background(), req)
	if out.Status != 400 {
		t.Fatalf("status = %d, want 400", out.Status)
	}
	req = testRequest(1)
	req.Options.Algorithm = "not-a-planner"
	out = s.Do(context.Background(), req)
	if out.Status != 400 {
		t.Fatalf("status = %d, want 400", out.Status)
	}
	if n := counter(s, CounterPlans) + counter(s, CounterMisses); n != 0 {
		t.Fatalf("invalid requests reached the planner (plans+misses = %d)", n)
	}
}

func TestPlanErrorPropagates(t *testing.T) {
	s := New(Config{planFn: func(key string, r Request, tr *uavdc.Trace) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}})
	defer s.Close(context.Background())
	out := s.Do(context.Background(), testRequest(1))
	if out.Status != 500 {
		t.Fatalf("status = %d, want 500", out.Status)
	}
	if n := counter(s, CounterErrors); n != 1 {
		t.Fatalf("serve.errors = %d, want 1", n)
	}
	// Failed flights are not cached: a retry plans again.
	s.Do(context.Background(), testRequest(1))
	if n := counter(s, CounterPlans); n != 2 {
		t.Fatalf("serve.plans = %d, want 2 (errors must not be cached)", n)
	}
}
