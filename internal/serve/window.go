package serve

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"uavdc/internal/obs"
	"uavdc/internal/oplog"
	"uavdc/internal/wire"
)

// WindowSchema tags the /debug/window JSON body.
const WindowSchema = wire.Window

// RuntimeSchema tags the /debug/runtime JSON body.
const RuntimeSchema = wire.Runtime

// HealthSchema tags the /healthz JSON body.
const HealthSchema = wire.Health

// oplogRingSize bounds the in-memory op-log ring behind /debug/oplog:
// enough recent history for a live tail, small enough to never matter.
const oplogRingSize = 256

// windowSample is one cumulative reading of the server's counters plus
// the instantaneous queue depth; window statistics are deltas between
// two samples, so the ring stores running totals, not rates.
type windowSample struct {
	queue    int
	requests int64
	hits     int64
	misses   int64
	rejected int64
	latency  obs.HistStat
}

// windowRing is a fixed-size ring buffer of samples taken at a nominal
// interval. Statistics over "the last s seconds" subtract the sample
// s/interval slots back from the newest one.
type windowRing struct {
	mu       sync.Mutex
	buf      []windowSample
	total    int
	interval time.Duration
}

func newWindowRing(size int, interval time.Duration) *windowRing {
	if interval <= 0 {
		interval = time.Second
	}
	return &windowRing{buf: make([]windowSample, size), interval: interval}
}

func (r *windowRing) add(s windowSample) {
	r.mu.Lock()
	r.buf[r.total%len(r.buf)] = s
	r.total++
	r.mu.Unlock()
}

// last returns the newest sample and the sample n slots earlier (clamped
// to the oldest retained), plus the number of intervals between them.
func (r *windowRing) last(n int) (newest, oldest windowSample, span, have int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	have = r.total
	if have > len(r.buf) {
		have = len(r.buf)
	}
	if have == 0 {
		return windowSample{}, windowSample{}, 0, 0
	}
	if n > have-1 {
		n = have - 1
	}
	if n < 0 {
		n = 0
	}
	newest = r.buf[(r.total-1)%len(r.buf)]
	oldest = r.buf[(r.total-1-n)%len(r.buf)]
	return newest, oldest, n, have
}

// WindowStats is the /debug/window JSON body: load, cache behaviour, and
// latency quantiles over the trailing window, computed as the delta
// between the newest sample and the one window_s earlier. Quantiles are
// bucket-interpolated from the serve.latency.seconds histogram delta.
type WindowStats struct {
	Schema string `json:"schema"`
	// WindowS is the span actually covered — shorter than requested when
	// the ring holds fewer samples.
	WindowS float64 `json:"window_s"`
	// Samples is the number of samples currently retained in the ring.
	Samples  int   `json:"samples"`
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Rejected int64 `json:"rejected"`
	// HitRatio is hits over requests within the window, 0 when idle.
	HitRatio float64 `json:"hit_ratio"`
	// RejectionRate is rejections over requests within the window.
	RejectionRate float64 `json:"rejection_rate"`
	QueueNow      int     `json:"queue_now"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
}

// Sample takes one window sample: the obs counter totals, the latency
// histogram, and the instantaneous queue depth (also refreshed on the
// serve.queue_depth gauge). The background sampler calls this on its
// interval; deterministic tests call it directly.
func (s *Server) Sample() {
	depth := s.QueueDepth()
	s.gQueueDepth.Set(int64(depth))
	s.cWindowSamples.Inc()
	snap := s.reg.Snapshot()
	s.window.add(windowSample{
		queue:    depth,
		requests: snap.Counters[CounterRequests],
		hits:     snap.Counters[CounterHits],
		misses:   snap.Counters[CounterMisses],
		rejected: snap.Counters[CounterRejected],
		latency:  snap.Hists[HistLatency],
	})
}

// sampler drives Sample on the configured interval until Close.
func (s *Server) sampler(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Sample()
		case <-s.stop:
			return
		}
	}
}

// WindowStats computes the trailing-window statistics for the requested
// span. The covered span is clamped to the samples actually retained; a
// ring with fewer than two samples reports only the instantaneous queue
// depth.
func (s *Server) WindowStats(window time.Duration) WindowStats {
	interval := s.window.interval
	n := int(window / interval)
	if n < 1 {
		n = 1
	}
	newest, oldest, span, have := s.window.last(n)
	st := WindowStats{
		Schema:   WindowSchema,
		Samples:  have,
		QueueNow: s.QueueDepth(),
	}
	if span == 0 {
		return st
	}
	st.WindowS = (time.Duration(span) * interval).Seconds()
	st.Requests = newest.requests - oldest.requests
	st.Hits = newest.hits - oldest.hits
	st.Misses = newest.misses - oldest.misses
	st.Rejected = newest.rejected - oldest.rejected
	if st.Requests > 0 {
		st.HitRatio = float64(st.Hits) / float64(st.Requests)
		st.RejectionRate = float64(st.Rejected) / float64(st.Requests)
	}
	lat := newest.latency.Sub(oldest.latency)
	st.LatencyP50Ms = lat.Quantile(0.50) * 1e3
	st.LatencyP90Ms = lat.Quantile(0.90) * 1e3
	st.LatencyP99Ms = lat.Quantile(0.99) * 1e3
	return st
}

// RuntimeStats is the /debug/runtime JSON body: a point-in-time reading
// of the Go runtime — heap, GC pauses, goroutine count.
type RuntimeStats struct {
	Schema         string  `json:"schema"`
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	GCRuns         uint32  `json:"gc_runs"`
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	LastGCPauseMs  float64 `json:"last_gc_pause_ms"`
	NextGCBytes    uint64  `json:"next_gc_bytes"`
}

// ReadRuntimeStats samples the Go runtime.
func ReadRuntimeStats() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	st := RuntimeStats{
		Schema:         RuntimeSchema,
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: m.HeapAlloc,
		HeapSysBytes:   m.HeapSys,
		HeapObjects:    m.HeapObjects,
		GCRuns:         m.NumGC,
		GCPauseTotalMs: float64(m.PauseTotalNs) / 1e6,
		NextGCBytes:    m.NextGC,
	}
	if m.NumGC > 0 {
		st.LastGCPauseMs = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e6
	}
	return st
}

// Health is the /healthz JSON body: enough for a load balancer (or
// uavobs tail) to distinguish draining from healthy without scraping
// /metrics.
type Health struct {
	Schema string `json:"schema"`
	// Status is "ok" or "draining"; the endpoint always answers 200 —
	// drain state is data, not liveness.
	Status     string  `json:"status"`
	UptimeS    float64 `json:"uptime_s"`
	Draining   bool    `json:"draining"`
	CacheLen   int     `json:"cache_len"`
	QueueDepth int     `json:"queue_depth"`
}

// Health reports the server's liveness envelope.
func (s *Server) Health() Health {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	return Health{
		Schema:     HealthSchema,
		Status:     status,
		UptimeS:    time.Since(s.start).Seconds(), //uavdc:allow nodeterminism health uptime is reported wall time, excluded from determinism comparisons
		Draining:   draining,
		CacheLen:   s.CacheLen(),
		QueueDepth: s.QueueDepth(),
	}
}

// oplogRing retains the most recent op-log records in memory for the
// /debug/oplog endpoint, independent of whether a durable op-log sink is
// configured — a live tail needs no restart.
type oplogRing struct {
	mu    sync.Mutex
	buf   []oplog.Record
	total int
}

func newOplogRing(size int) *oplogRing {
	return &oplogRing{buf: make([]oplog.Record, size)}
}

func (r *oplogRing) add(rec oplog.Record) {
	r.mu.Lock()
	r.buf[r.total%len(r.buf)] = rec
	r.total++
	r.mu.Unlock()
}

// since returns the retained records with sequence numbers greater than
// after, in ascending sequence order. Concurrent requests complete (and
// ring) out of sequence order, so the slice is sorted before returning.
func (r *oplogRing) since(after int64) []oplog.Record {
	r.mu.Lock()
	have := r.total
	if have > len(r.buf) {
		have = len(r.buf)
	}
	out := make([]oplog.Record, 0, have)
	for i := r.total - have; i < r.total; i++ {
		if rec := r.buf[i%len(r.buf)]; rec.Seq > after {
			out = append(out, rec)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// OpLogSince returns the in-memory op-log records with Seq > after,
// ascending — the /debug/oplog contract.
func (s *Server) OpLogSince(after int64) []oplog.Record {
	return s.opRing.since(after)
}
