package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"uavdc/internal/oplog"
)

// TestWindowStatsDeltas drives manual samples around a known request mix
// and checks the windowed deltas, ratios, and quantile ordering.
func TestWindowStatsDeltas(t *testing.T) {
	s := New(Config{planFn: stubPlanner})
	defer s.Close(context.Background())
	ctx := context.Background()

	s.Sample() // baseline
	s.Do(ctx, testRequest(1))
	s.Do(ctx, testRequest(1))
	s.Do(ctx, testRequest(1))
	s.Do(ctx, testRequest(2))
	s.Sample()

	st := s.WindowStats(time.Minute)
	if st.Schema != WindowSchema {
		t.Fatalf("schema %q", st.Schema)
	}
	if st.Samples != 2 {
		t.Fatalf("samples = %d, want 2", st.Samples)
	}
	// One interval retained → the covered window is one nominal second.
	if st.WindowS != 1 {
		t.Errorf("window_s = %g, want 1", st.WindowS)
	}
	if st.Requests != 4 || st.Hits != 2 || st.Misses != 2 || st.Rejected != 0 {
		t.Errorf("deltas = %+v", st)
	}
	if st.HitRatio != 0.5 || st.RejectionRate != 0 {
		t.Errorf("ratios = %g/%g, want 0.5/0", st.HitRatio, st.RejectionRate)
	}
	if st.LatencyP50Ms < 0 || st.LatencyP90Ms < st.LatencyP50Ms || st.LatencyP99Ms < st.LatencyP90Ms {
		t.Errorf("quantiles out of order: %g/%g/%g", st.LatencyP50Ms, st.LatencyP90Ms, st.LatencyP99Ms)
	}
	if n := s.Snapshot().Counters[CounterWindowSamples]; n != 2 {
		t.Errorf("serve.window.samples = %d, want 2", n)
	}
	// The sample refreshed the queue-depth gauge.
	if g, ok := s.Snapshot().Gauges[GaugeQueueDepth]; !ok || g != 0 {
		t.Errorf("serve.queue_depth gauge = %d (present %v), want 0", g, ok)
	}

	// An empty or single-sample ring reports no window.
	fresh := New(Config{planFn: stubPlanner})
	defer fresh.Close(context.Background())
	if st := fresh.WindowStats(time.Minute); st.WindowS != 0 || st.Requests != 0 {
		t.Errorf("empty ring stats = %+v", st)
	}
}

// TestBackgroundSampler: a configured SampleInterval feeds the ring
// without manual Sample calls and stops with Close.
func TestBackgroundSampler(t *testing.T) {
	s := New(Config{SampleInterval: time.Millisecond, planFn: stubPlanner})
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Counters[CounterWindowSamples] < 3 {
		if time.Now().After(deadline) {
			t.Fatal("background sampler took no samples")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := s.Snapshot().Counters[CounterWindowSamples]
	time.Sleep(5 * time.Millisecond)
	if got := s.Snapshot().Counters[CounterWindowSamples]; got != after {
		t.Errorf("sampler still running after Close: %d → %d", after, got)
	}
}

// wallNums normalizes wall-clock JSON number fields before golden
// comparison.
func normalizeFields(b []byte, fields ...string) []byte {
	for _, f := range fields {
		re := regexp.MustCompile(`("` + f + `":)[-0-9.eE+]+`)
		b = re.ReplaceAll(b, []byte(`${1}<wall>`))
	}
	return b
}

// TestGoldenHealthz locks the uavdc-health/1 wire format (uptime
// normalized).
func TestGoldenHealthz(t *testing.T) {
	s := New(Config{planFn: stubPlanner})
	defer s.Close(context.Background())
	s.Do(context.Background(), testRequest(1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	goldenCompare(t, "healthz.golden", normalizeFields(body, "uptime_s"))
}

// TestGoldenWindow locks the uavdc-window/1 wire format (latency
// quantiles normalized; everything else is deterministic under manual
// sampling).
func TestGoldenWindow(t *testing.T) {
	s := New(Config{planFn: stubPlanner})
	defer s.Close(context.Background())
	ctx := context.Background()
	s.Sample()
	s.Do(ctx, testRequest(1))
	s.Do(ctx, testRequest(1))
	s.Do(ctx, testRequest(1))
	s.Sample()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/window?s=60")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/window status %d", resp.StatusCode)
	}
	goldenCompare(t, "window.golden",
		normalizeFields(body, "latency_p50_ms", "latency_p90_ms", "latency_p99_ms"))

	resp, err = http.Get(ts.URL + "/debug/window?s=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ?s= accepted: %d", resp.StatusCode)
	}
}

// TestGoldenRuntime locks the uavdc-runtime/1 wire format: every value
// is machine-dependent, so all numbers are normalized and the golden
// pins the schema and field set.
func TestGoldenRuntime(t *testing.T) {
	s := New(Config{planFn: stubPlanner})
	defer s.Close(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/runtime status %d", resp.StatusCode)
	}
	var rt RuntimeStats
	if err := json.Unmarshal(body, &rt); err != nil {
		t.Fatalf("runtime body not JSON: %v\n%s", err, body)
	}
	if rt.Schema != RuntimeSchema || rt.Goroutines <= 0 || rt.HeapAllocBytes == 0 {
		t.Fatalf("implausible runtime stats: %+v", rt)
	}
	goldenCompare(t, "runtime.golden", normalizeFields(body,
		"goroutines", "heap_alloc_bytes", "heap_sys_bytes", "heap_objects",
		"gc_runs", "gc_pause_total_ms", "last_gc_pause_ms", "next_gc_bytes"))
}

// TestDebugOplogEndpoint: /debug/oplog streams the ring as a
// uavdc-oplog/1 JSONL body and honours ?after= for incremental tailing.
func TestDebugOplogEndpoint(t *testing.T) {
	s := New(Config{planFn: stubPlanner})
	defer s.Close(context.Background())
	ctx := context.Background()
	s.Do(ctx, testRequest(1))
	s.Do(ctx, testRequest(1))
	s.Do(ctx, testRequest(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/oplog")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	hdr, recs, err := oplog.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("endpoint stream unreadable: %v\n%s", err, body)
	}
	if hdr.Schema != oplog.Schema || len(recs) != 3 {
		t.Fatalf("got %d records under %q, want 3 under %q", len(recs), hdr.Schema, oplog.Schema)
	}

	resp, err = http.Get(ts.URL + "/debug/oplog?after=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, recs, err = oplog.Read(bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("?after=2 returned %+v, want only seq 3", recs)
	}

	resp, err = http.Get(ts.URL + "/debug/oplog?after=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative ?after= accepted: %d", resp.StatusCode)
	}
}
