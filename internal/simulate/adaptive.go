package simulate

import (
	"math"

	"uavdc/internal/core"
	"uavdc/internal/faults"
	"uavdc/internal/geom"
	"uavdc/internal/obs"
	"uavdc/internal/trace"
	"uavdc/internal/units"
)

// Instrumentation counter names recorded by the adaptive executor into the
// instance's obs recorder. Totals are exactly reproducible for a fixed
// instance, plan, and fault schedule at any Workers setting: the executor
// itself is serial, and the replan scans use the planners' sharded
// total-order machinery.
const (
	// CounterReplanTriggered counts mid-flight replans of the remaining
	// tour.
	CounterReplanTriggered = "replan.triggered"
	// CounterFaultsApplied counts fault activations: every leg flown
	// under a wind surcharge, hover under a drain surcharge, upload
	// degraded or blocked, and no-hover zone hit.
	CounterFaultsApplied = "faults.applied"
	// CounterEnergyDeviation accumulates, per executed stop, the absolute
	// deviation between the plan's energy accounting and the actual
	// battery, rounded to whole joules.
	CounterEnergyDeviation = "exec.energy_deviation"
	// CounterStopsSkipped counts planned stops abandoned to preserve the
	// fly-home reserve.
	CounterStopsSkipped = "exec.stops_skipped"
	// HistEnergyDeviation is the per-stop absolute energy-deviation
	// distribution in joules. Deviations are deterministic (no WallSuffix),
	// so the bucket counts share the counters' reproducibility guarantee.
	HistEnergyDeviation = "exec.energy_deviation_hist"
)

// DeviationBuckets are the HistEnergyDeviation boundaries in joules:
// decades from 1 J to 100 kJ (battery capacities are order 10⁵–10⁶ J).
var DeviationBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5}

// DefaultMargin is the replan trigger threshold as a fraction of battery
// capacity: once the actual residual energy deviates from the plan's
// accounting by more than Margin·Capacity, the remaining tour is replanned.
const DefaultMargin = 0.02

// AdaptiveOptions configures an adaptive (fault-aware, replanning) mission
// execution. The embedded Options supply RecordEvents and Noise; Altitude
// and Radio are taken from the planning instance so the executor flies the
// same physics the plan was priced against.
type AdaptiveOptions struct {
	Options
	// Faults is the declared fault schedule; nil executes fault-free.
	Faults *faults.Schedule
	// Margin is the replan trigger threshold as a fraction of battery
	// capacity; 0 or negative selects DefaultMargin.
	Margin float64
	// Workers fans the replan candidate scans across goroutines; results
	// are identical at any worker count.
	Workers int
	// MaxReplans caps mid-flight replans (0 selects a cap generous enough
	// to never bind in practice); the cap guarantees termination even
	// under adversarial schedules that starve every stop.
	MaxReplans int
}

// AdaptiveResult extends the simulator result with the adaptive executor's
// bookkeeping.
type AdaptiveResult struct {
	Result
	// Replans counts mid-flight replans of the remaining tour.
	Replans int
	// FaultsApplied counts fault activations during execution.
	FaultsApplied int
	// StopsSkipped counts planned stops abandoned to preserve the
	// fly-home reserve.
	StopsSkipped int
	// Diverted is true when the executor flew home early instead of
	// attempting the remaining stops.
	Diverted bool
	// FinalBattery is the battery level back at the depot in J; the
	// reachable-depot invariant guarantees it is never negative under the
	// declared fault schedule and noise bound.
	FinalBattery float64
	// MaxDeviation is the largest absolute deviation observed between the
	// plan's energy accounting and the actual battery, in J.
	MaxDeviation float64
}

// queued is one pending stop with its telemetry index.
type queued struct {
	stop core.Stop
	idx  int
}

// AdaptiveRun executes a plan stop-by-stop under a declared fault schedule,
// replanning the remaining tour whenever the actual battery deviates from
// the plan's accounting by more than the margin, and always reserving the
// worst-case fly-home cost before committing to a leg or hover.
//
// The reachable-depot invariant holds by construction: every committed
// action keeps battery ≥ TravelEnergy(dist-to-depot)·worst-case-factor +
// descent, where the worst case is bounded by the declared schedule
// (Schedule.MaxLegFactor) and the noise model (Noise.MaxFactor). A mission
// that cannot afford its next stop under that pessimistic pricing diverts
// home instead of dying mid-field, degrading collected volume gracefully —
// AdaptiveRun never emits EventBatteryDead.
//
// Disturbances compose multiplicatively, in a documented order: every
// flight leg and hover segment costs nominal × noise-factor × fault-factor.
// The noise stream is drawn per executed segment in flight order, so
// replanned legs are perturbed exactly like nominal ones.
//
// With a nil/empty schedule and no noise the deviation stays exactly zero,
// no replan or divert triggers, and the executed telemetry, volumes, and
// energy accounting reproduce Run bit-for-bit on any valid plan.
//
// Counters (CounterReplanTriggered, CounterFaultsApplied,
// CounterEnergyDeviation, CounterStopsSkipped) record into in.Obs, as do
// the replan scans.
func AdaptiveRun(in *core.Instance, plan *core.Plan, opts AdaptiveOptions) AdaptiveResult {
	net, em := in.Net, in.Model
	opts.Altitude = in.Altitude
	opts.Radio = in.Radio
	sched := opts.Faults
	margin := opts.Margin
	if margin <= 0 {
		margin = DefaultMargin
	}
	replanCap := opts.MaxReplans
	if replanCap <= 0 {
		replanCap = 8 + 2*len(plan.Stops)
	}
	rec := obs.OrDiscard(in.Obs)
	cReplan := rec.Counter(CounterReplanTriggered)
	cFaults := rec.Counter(CounterFaultsApplied)
	cDev := rec.Counter(CounterEnergyDeviation)
	cSkipped := rec.Counter(CounterStopsSkipped)
	hDev := rec.Histogram(HistEnergyDeviation, DeviationBuckets)
	tr := trace.OrDiscard(opts.Trace)
	if !tr.Enabled() {
		// Fall back to the tracer riding on the instance recorder, so a
		// trace.With-wrapped in.Obs captures the mission log too.
		tr = trace.Of(rec)
	}
	emit := tr.Enabled()

	res := AdaptiveResult{Result: Result{PerSensor: make([]float64, len(net.Sensors))}}
	countFault := func() {
		res.FaultsApplied++
		cFaults.Inc()
	}
	battery := em.Capacity
	pos := plan.Depot
	var now units.Seconds
	nextFactor := opts.Noise.factors()
	noiseMax := opts.Noise.MaxFactor()
	descend := em.ClimbEnergy(opts.Altitude)
	// wTravel bounds the actual factor of any future leg; reserve(p) is
	// the guaranteed-sufficient cost of going home from p.
	wTravel := sched.MaxLegFactor() * noiseMax
	reserve := func(p geom.Point) units.Joules {
		return units.Scale(em.TravelEnergy(units.Meters(p.Dist(plan.Depot))), wTravel) + descend
	}

	// expected tracks what the plan's own accounting says the battery
	// should be; rebased after takeoff and on every replan. Deviation =
	// expected − battery.
	expected := battery

	log := func(kind EventKind, stop int) {
		if opts.RecordEvents {
			res.Events = append(res.Events, Event{
				Kind: kind, Time: now.F(), Pos: pos, Stop: stop,
				EnergyUsed: res.EnergyUsed, Collected: res.Collected,
			})
		}
		if emit {
			tr.Event(MissionEventPrefix+kind.String(),
				trace.Num("t_sim", now.F()),
				trace.Int("stop", stop),
				trace.Num("x", pos.X),
				trace.Num("y", pos.Y),
				trace.Num("energy_j", res.EnergyUsed),
				trace.Num("collected_mb", res.Collected),
				trace.Num("battery_j", battery.F()),
				trace.Num("deviation_j", (expected-battery).F()),
				trace.Int("faults", res.FaultsApplied))
		}
	}

	// Refuse a mission whose fixed vertical overhead alone cannot round-
	// trip: the UAV stays grounded with a full battery rather than taking
	// off into a guaranteed loss.
	if climb := em.ClimbEnergy(opts.Altitude); climb+descend > battery+1e-12 {
		res.AbortReason = "vertical overhead exceeds battery; mission not started"
		res.FinalBattery = battery.F()
		return res
	}

	log(EventTakeoff, -1)
	if climb := em.ClimbEnergy(opts.Altitude); climb > 0 {
		battery -= climb
		res.EnergyUsed += climb.F()
		now += units.TravelTime(opts.Altitude, em.ClimbRate)
	}

	expected = battery

	queue := make([]queued, len(plan.Stops))
	for i := range plan.Stops {
		queue[i] = queued{stop: plan.Stops[i], idx: i}
	}
	nextIdx := len(plan.Stops)
	legIdx := 0
	stopCount := 0
	replans := 0

	for len(queue) > 0 {
		e := queue[0]
		stop := e.stop
		dist := pos.Dist(stop.Pos)
		legFault := sched.LegFactor(legIdx)
		// Reachable-depot guard: commit to this leg only if, after the
		// worst-case draw, the destination's fly-home reserve survives.
		if worst := units.Scale(em.TravelEnergy(units.Meters(dist)), legFault*noiseMax); battery < worst+reserve(stop.Pos) {
			res.Diverted = true
			res.StopsSkipped = len(queue)
			cSkipped.Add(int64(len(queue)))
			log(EventDivert, e.idx)
			break
		}
		if legFault != 1 {
			countFault()
		}
		factor := nextFactor() * legFault
		need := units.Scale(em.TravelEnergy(units.Meters(dist)), factor)
		battery -= need
		res.EnergyUsed += need.F()
		res.FlightDistance += dist
		now += em.TravelTime(units.Meters(dist))
		pos = stop.Pos
		legIdx++
		log(EventArrive, e.idx)

		// Hover, capped so the fly-home reserve survives the segment.
		want := units.Seconds(stop.Sojourn)
		hoverFault := sched.HoverFactor(stopCount)
		if hoverFault != 1 {
			countFault()
		}
		if sched.NoHoverAt(stop.Pos) {
			want = 0
			countFault()
		}
		hoverFactor := nextFactor() * hoverFault
		avail := battery - reserve(pos)
		canAfford := want
		if need := units.Scale(em.HoverEnergy(want), hoverFactor); need > avail {
			canAfford = units.Duration(avail, units.Scale(em.HoverPower, hoverFactor))
			if canAfford < 0 {
				canAfford = 0
			}
		}
		for _, c := range stop.Collected {
			if c.Sensor < 0 || c.Sensor >= len(net.Sensors) {
				continue
			}
			uf := sched.UploadFactor(stopCount, c.Sensor)
			if uf != 1 {
				cFaults.Inc()
			}
			rate := units.Scale(opts.rateFor(net, units.Meters(net.Sensors[c.Sensor].Pos.Dist(stop.Pos))), uf)
			amt := units.Min(units.Bits(c.Amount), units.Transfer(rate, canAfford)).F()
			remain := net.Sensors[c.Sensor].Data - res.PerSensor[c.Sensor]
			amt = math.Min(amt, math.Max(remain, 0))
			res.PerSensor[c.Sensor] += amt
			res.Collected += amt
		}
		used := units.Scale(em.HoverEnergy(canAfford), hoverFactor)
		if used > avail && canAfford < want {
			// Guard against float rounding in the truncation branch: the
			// reserve is inviolable.
			used = avail
		}
		battery -= used
		res.EnergyUsed += used.F()
		res.HoverTime += canAfford.F()
		now += canAfford
		log(EventCollect, e.idx)
		stopCount++
		queue = queue[1:]

		// Compare actual residual energy against the plan's accounting
		// and replan the remaining tour when the deviation exceeds the
		// margin. The two subtractions mirror the battery's own op
		// sequence so the fault-free deviation is exactly zero.
		expected -= em.TravelEnergy(units.Meters(dist))
		expected -= em.HoverEnergy(units.Seconds(stop.Sojourn))
		dev := units.Abs(expected - battery).F()
		if dev > res.MaxDeviation {
			res.MaxDeviation = dev
		}
		cDev.Add(int64(math.Round(dev)))
		hDev.Observe(dev)
		if len(queue) > 0 && dev > units.Scale(em.Capacity, margin).F() && replans < replanCap {
			residual := make([]units.Bits, len(net.Sensors))
			for v := range residual {
				residual[v] = units.Bits(math.Max(net.Sensors[v].Data-res.PerSensor[v], 0))
			}
			budget := battery - descend
			if budget < 0 {
				budget = 0
			}
			state := core.ResidualState{
				Pos:      pos,
				Budget:   budget,
				Residual: residual,
				K:        in.K,
				Workers:  opts.Workers,
			}
			if !sched.Empty() {
				state.Exclude = sched.NoHoverAt
			}
			if rp, err := core.ReplanResidual(in, state); err == nil {
				replans++
				res.Replans++
				cReplan.Inc()
				log(EventReplan, -1)
				queue = queue[:0]
				for i := range rp.Stops {
					queue = append(queue, queued{stop: rp.Stops[i], idx: nextIdx})
					nextIdx++
				}
				expected = battery
			}
		}
	}

	// Home leg: the maintained reserve guarantees it is affordable under
	// the worst-case draw.
	homeDist := pos.Dist(plan.Depot)
	legFault := sched.LegFactor(legIdx)
	if legFault != 1 {
		countFault()
	}
	factor := nextFactor() * legFault
	need := units.Scale(em.TravelEnergy(units.Meters(homeDist)), factor)
	battery -= need
	res.EnergyUsed += need.F()
	res.FlightDistance += homeDist
	now += em.TravelTime(units.Meters(homeDist))
	pos = plan.Depot
	if descend > 0 {
		battery -= descend
		res.EnergyUsed += descend.F()
		now += units.TravelTime(opts.Altitude, em.ClimbRate)
	}
	log(EventReturn, -1)
	res.Completed = true
	res.MissionTime = now.F()
	res.FinalBattery = battery.F()
	return res
}
