package simulate

import (
	"maps"
	"math"
	"reflect"
	"slices"
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/faults"
	"uavdc/internal/geom"
	"uavdc/internal/obs"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// adaptiveInstance builds a mid-size random instance for executor tests.
func adaptiveInstance(t *testing.T, seed uint64, capacity units.Joules) *core.Instance {
	t.Helper()
	p := sensornet.DefaultGenParams()
	p.NumSensors = 40
	p.Side = 300
	net, err := sensornet.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &core.Instance{
		Net:   net,
		Model: energy.Default().WithCapacity(capacity),
		Delta: 25,
		K:     2,
	}
}

func allPlanners() []core.Planner {
	return []core.Planner{
		&core.Algorithm1{}, &core.Algorithm2{}, &core.Algorithm3{}, &core.BenchmarkPlanner{},
	}
}

// assertAdaptiveMatchesRun compares a fault-free, noise-free adaptive
// execution against the reference simulator bit-for-bit: volumes, energy,
// time, and the full telemetry log.
func assertAdaptiveMatchesRun(t *testing.T, label string, in *core.Instance, plan *core.Plan) {
	t.Helper()
	opts := Options{RecordEvents: true, Altitude: in.Altitude, Radio: in.Radio}
	want := Run(in.Net, in.Model, plan, opts)
	got := AdaptiveRun(in, plan, AdaptiveOptions{Options: opts})
	if !want.Completed {
		t.Fatalf("%s: reference mission aborted: %s", label, want.AbortReason)
	}
	if !got.Completed {
		t.Fatalf("%s: adaptive mission did not complete", label)
	}
	if got.Replans != 0 || got.Diverted || got.StopsSkipped != 0 {
		t.Fatalf("%s: fault-free execution replanned/diverted: %+v", label, got)
	}
	if got.MaxDeviation != 0 {
		t.Errorf("%s: fault-free deviation = %v, want exactly 0", label, got.MaxDeviation)
	}
	if got.EnergyUsed != want.EnergyUsed ||
		got.FlightDistance != want.FlightDistance ||
		got.HoverTime != want.HoverTime ||
		got.MissionTime != want.MissionTime ||
		got.Collected != want.Collected {
		t.Errorf("%s: scalar telemetry diverges:\n got %+v\nwant %+v", label, got.Result, want)
	}
	if !reflect.DeepEqual(got.PerSensor, want.PerSensor) {
		t.Errorf("%s: per-sensor volumes diverge", label)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("%s: %d events, want %d", label, len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Errorf("%s: event %d = %+v, want %+v", label, i, got.Events[i], want.Events[i])
		}
	}
}

// TestAdaptiveMatchesRunFaultFree: with no schedule and no noise the
// adaptive executor is bit-for-bit the reference simulator, on every
// planner's plan.
func TestAdaptiveMatchesRunFaultFree(t *testing.T) {
	for _, seed := range []uint64{3, 9} {
		in := adaptiveInstance(t, seed, 2.5e4)
		for _, pl := range allPlanners() {
			plan, err := pl.Plan(in)
			if err != nil {
				t.Fatalf("%s: %v", pl.Name(), err)
			}
			assertAdaptiveMatchesRun(t, pl.Name(), in, plan)
		}
	}
}

// TestAdaptiveNeverDiesUnderFaults is the reachable-depot property test:
// across a fixed matrix of instance seeds, planners, fault schedules and
// noise settings, the adaptive executor never emits EventBatteryDead and
// always lands at the depot with a non-negative battery.
func TestAdaptiveNeverDiesUnderFaults(t *testing.T) {
	harsh := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindWind, Legs: faults.AllRange, Factor: 2.1},
		{Kind: faults.KindHoverDrain, Stops: faults.AllRange, Factor: 1.6},
		{Kind: faults.KindUploadFail, Stops: faults.Range{From: 1, To: 3}, Sensor: faults.AllSensors},
		{Kind: faults.KindNoHover, Zone: geom.Circle{C: geom.Pt(150, 150), R: 80}},
	}}
	schedules := map[string]*faults.Schedule{
		"none":    nil,
		"default": faults.Default(),
		"harsh":   harsh,
	}
	for s := int64(0); s < 4; s++ {
		schedules["rand"+string(rune('0'+s))] = faults.Random(s, 6, 0.5, 300)
	}
	for _, seed := range []uint64{1, 2, 5} {
		// A tight budget stresses the reserve logic the hardest.
		for _, capacity := range []units.Joules{1.2e4, 3e4} {
			in := adaptiveInstance(t, seed, capacity)
			for _, pl := range allPlanners() {
				plan, err := pl.Plan(in)
				if err != nil {
					t.Fatalf("%s: %v", pl.Name(), err)
				}
				for _, name := range slices.Sorted(maps.Keys(schedules)) {
					sched := schedules[name]
					for _, noise := range []Noise{{}, {Spread: 0.25, Seed: int64(seed)}} {
						res := AdaptiveRun(in, plan, AdaptiveOptions{
							Options: Options{RecordEvents: true, Noise: noise},
							Faults:  sched,
						})
						label := pl.Name() + "/" + name
						for _, ev := range res.Events {
							if ev.Kind == EventBatteryDead {
								t.Fatalf("%s seed=%d cap=%g: battery died", label, seed, capacity)
							}
						}
						if res.FinalBattery < 0 {
							t.Errorf("%s seed=%d cap=%g: depot battery %v < 0",
								label, seed, capacity, res.FinalBattery)
						}
						if res.EnergyUsed > in.Model.Capacity.F()+1e-6 {
							t.Errorf("%s seed=%d cap=%g: drew %v J of %v",
								label, seed, capacity, res.EnergyUsed, in.Model.Capacity)
						}
						for v, amt := range res.PerSensor {
							if amt > in.Net.Sensors[v].Data+1e-9 {
								t.Errorf("%s: sensor %d over-collected", label, v)
							}
						}
					}
				}
			}
		}
	}
}

// TestAdaptiveCountersDeterministicAcrossWorkers: the full adaptive
// execution — including mid-flight replans, whose candidate scans fan out
// across goroutines — produces identical telemetry, volumes, and counter
// totals at any Workers setting.
func TestAdaptiveCountersDeterministicAcrossWorkers(t *testing.T) {
	base := adaptiveInstance(t, 4, 2e4)
	base.Delta = 12 // enough replan candidates to clear the parallel threshold
	plan, err := (&core.Algorithm3{}).Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Parse("wind:legs=0-,factor=1.5;bw:stops=1-,factor=0.5")
	if err != nil {
		t.Fatal(err)
	}
	var want *AdaptiveResult
	var wantSnap obs.Snapshot
	for _, workers := range []int{1, 2, 4, 8} {
		in := *base
		reg := obs.NewRegistry()
		in.Obs = reg
		res := AdaptiveRun(&in, plan, AdaptiveOptions{
			Options: Options{RecordEvents: true, Noise: Noise{Spread: 0.1, Seed: 11}},
			Faults:  sched,
			Margin:  0.01,
			Workers: workers,
		})
		snap := reg.Snapshot()
		if want == nil {
			if res.Replans == 0 {
				t.Fatal("scenario triggered no replan; test exercises nothing")
			}
			if snap.Counters[CounterReplanTriggered] != int64(res.Replans) {
				t.Errorf("counter %s = %d, result says %d",
					CounterReplanTriggered, snap.Counters[CounterReplanTriggered], res.Replans)
			}
			if snap.Counters[CounterFaultsApplied] == 0 {
				t.Error("no fault activations counted under an always-on schedule")
			}
			want, wantSnap = &res, snap
			continue
		}
		if !reflect.DeepEqual(*want, res) {
			t.Errorf("workers=%d: adaptive result diverges:\n got %+v\nwant %+v", workers, res, *want)
		}
		if !wantSnap.Equal(snap) {
			t.Errorf("workers=%d: counters diverge:\n%s", workers, wantSnap.Diff(snap))
		}
	}
}

// TestFaultAndNoiseCompose: a segment's actual cost is nominal × noise
// factor × fault factor, in that order, reproduced here draw by draw.
func TestFaultAndNoiseCompose(t *testing.T) {
	net := simNet()
	plan := simPlan()
	em := energy.Default()
	in := &core.Instance{Net: net, Model: em, Delta: 25, K: 1}
	sched, err := faults.Parse("wind:legs=0-,factor=1.3;hover:stops=0-,factor=1.2")
	if err != nil {
		t.Fatal(err)
	}
	noise := Noise{Spread: 0.15, Seed: 21}
	res := AdaptiveRun(in, plan, AdaptiveOptions{
		Options: Options{Noise: noise},
		Faults:  sched,
		Margin:  0.99, // suppress replanning: this test checks pure pricing
	})
	if !res.Completed {
		t.Fatal("mission did not complete")
	}
	// Replay the same noise stream and compose the expected bill segment by
	// segment, in the executor's draw order: leg, hover, leg, hover, home.
	draw := noise.factors()
	var want float64
	pos := plan.Depot
	for i := range plan.Stops {
		stop := plan.Stops[i]
		want += em.TravelEnergy(units.Meters(pos.Dist(stop.Pos))).F() * (draw() * 1.3)
		want += em.HoverEnergy(units.Seconds(stop.Sojourn)).F() * (draw() * 1.2)
		pos = stop.Pos
	}
	want += em.TravelEnergy(units.Meters(pos.Dist(plan.Depot))).F() * (draw() * 1.3)
	if math.Abs(res.EnergyUsed-want) > 1e-9 {
		t.Errorf("energy %v, composed expectation %v", res.EnergyUsed, want)
	}
	if res.FaultsApplied == 0 {
		t.Error("no fault activations recorded")
	}
}

// TestNoiseCoversReplannedLegs: legs introduced by a mid-flight replan are
// subject to the same per-segment noise draws as nominal legs — the stream
// is indexed by executed segment, not by plan position.
func TestNoiseCoversReplannedLegs(t *testing.T) {
	in := adaptiveInstance(t, 6, 2e4)
	plan, err := (&core.Algorithm2{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	// A strong surcharge on the first legs forces a deviation and a replan.
	sched, err := faults.Parse("wind:legs=0-1,factor=1.9")
	if err != nil {
		t.Fatal(err)
	}
	em := in.Model
	res := AdaptiveRun(in, plan, AdaptiveOptions{
		Options: Options{RecordEvents: true, Noise: Noise{Spread: 0.2, Seed: 5}},
		Faults:  sched,
		Margin:  0.01,
	})
	if res.Replans == 0 {
		t.Fatal("scenario triggered no replan; test exercises nothing")
	}
	// Walk the telemetry after the first replan: every flight leg's billed
	// energy, divided by its nominal cost and the (identity, legs ≥ 2)
	// fault factor, is the noise draw — which is ≠ 1 almost surely.
	replanAt := -1
	for i, ev := range res.Events {
		if ev.Kind == EventReplan {
			replanAt = i
			break
		}
	}
	if replanAt < 0 {
		t.Fatal("no replan event in telemetry")
	}
	noisy := 0
	for i := replanAt + 1; i < len(res.Events); i++ {
		ev := res.Events[i]
		if ev.Kind != EventArrive && ev.Kind != EventReturn {
			continue
		}
		prev := res.Events[i-1]
		dist := prev.Pos.Dist(ev.Pos)
		nominal := em.TravelEnergy(units.Meters(dist))
		if nominal <= 0 {
			continue
		}
		factor := (ev.EnergyUsed - prev.EnergyUsed) / nominal.F()
		if math.Abs(factor-1) > 1e-6 {
			noisy++
		}
	}
	if noisy == 0 {
		t.Error("no replanned leg shows a noise factor; noise stream skipped the replanned tour")
	}
}

// TestAdaptiveDivertsInsteadOfDying: under a surcharge so harsh the plan's
// budget cannot cover it, the executor abandons stops and still lands with
// a non-negative battery, logging EventDivert.
func TestAdaptiveDivertsInsteadOfDying(t *testing.T) {
	in := adaptiveInstance(t, 2, 1.5e4)
	plan, err := (&core.Algorithm2{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stops) == 0 {
		t.Fatal("empty plan")
	}
	sched, err := faults.Parse("wind:legs=0-,factor=3.5")
	if err != nil {
		t.Fatal(err)
	}
	res := AdaptiveRun(in, plan, AdaptiveOptions{
		Options: Options{RecordEvents: true},
		Faults:  sched,
		// Replanning under a uniform 3.5× surcharge keeps plans tiny; with
		// replans disabled by a huge margin the divert path must trigger.
		Margin: 0.99,
	})
	if !res.Completed {
		t.Fatal("diverted mission must still complete at the depot")
	}
	if res.FinalBattery < 0 {
		t.Errorf("depot battery %v < 0", res.FinalBattery)
	}
	if !res.Diverted || res.StopsSkipped == 0 {
		t.Errorf("expected a divert, got %+v", res)
	}
	sawDivert := false
	for _, ev := range res.Events {
		if ev.Kind == EventDivert {
			sawDivert = true
		}
		if ev.Kind == EventBatteryDead {
			t.Fatal("battery died")
		}
	}
	if !sawDivert {
		t.Error("no EventDivert in telemetry")
	}
}

// TestAdaptiveEventKindStrings covers the executor-only telemetry kinds.
func TestAdaptiveEventKindStrings(t *testing.T) {
	if got := EventReplan.String(); got != "replan" {
		t.Errorf("EventReplan = %q", got)
	}
	if got := EventDivert.String(); got != "divert" {
		t.Errorf("EventDivert = %q", got)
	}
	for k := EventTakeoff; k <= EventDivert; k++ {
		if k.String() == "" {
			t.Errorf("empty String for %d", int(k))
		}
	}
}
