package simulate

import (
	"uavdc/internal/canon"
	"uavdc/internal/radio"
	"uavdc/internal/wire"
)

// CanonParts appends the physics knobs that change a simulation's outcome:
// altitude, the uplink model, and the power-noise disturbance. Telemetry
// switches (RecordEvents, Trace) are excluded — recording never changes
// the result, and the repo's rails prove it.
func (o Options) CanonParts(e *canon.Encoder) error {
	r, err := radio.Canon(o.Radio)
	if err != nil {
		return err
	}
	e.F64(o.Altitude.F())
	e.Byte(byte(r.Kind))
	e.F64(r.RefRate, r.RefDist, r.RefSNR, r.PathLossExp)
	e.F64(o.Noise.Spread)
	e.I64(o.Noise.Seed)
	return nil
}

// adaptiveCanonTag versions the adaptive-executor key extension.
const adaptiveCanonTag = wire.SimulateAdaptive

// CanonKey widens an instance key with everything the adaptive executor's
// outcome depends on: the simulation physics, the fault schedule, the
// replan margin, and the replan cap. Workers is excluded — replans are
// worker-invariant by construction. Unset sentinels (Margin ≤ 0,
// MaxReplans ≤ 0) are resolved to the executor's defaults first.
func (o AdaptiveOptions) CanonKey(base canon.Key) (canon.Key, error) {
	margin := o.Margin
	if margin <= 0 {
		margin = DefaultMargin
	}
	maxReplans := o.MaxReplans
	if maxReplans <= 0 {
		maxReplans = 0 // the generous default cap never binds; 0 is its canonical spelling
	}
	var partsErr error
	k := canon.ExtendKey(base, adaptiveCanonTag, func(e *canon.Encoder) {
		partsErr = o.Options.CanonParts(e)
		o.Faults.CanonParts(e)
		e.F64(margin)
		e.I64(int64(maxReplans))
	})
	if partsErr != nil {
		return canon.Key{}, partsErr
	}
	return k, nil
}
