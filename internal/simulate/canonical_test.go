package simulate

import (
	"maps"
	"slices"
	"testing"

	"uavdc/internal/canon"
	"uavdc/internal/faults"
	"uavdc/internal/units"
)

func TestAdaptiveCanonKey(t *testing.T) {
	var base canon.Key
	base[9] = 1

	def, err := AdaptiveOptions{}.CanonKey(base)
	if err != nil {
		t.Fatalf("CanonKey: %v", err)
	}
	spelled, err := AdaptiveOptions{Margin: DefaultMargin}.CanonKey(base)
	if err != nil {
		t.Fatalf("CanonKey: %v", err)
	}
	if def != spelled {
		t.Fatal("elided and spelled-out margin hash differently")
	}

	wind := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindWind, Legs: faults.AllRange, Sensor: faults.AllSensors, Factor: 1.2},
	}}
	knobs := map[string]AdaptiveOptions{
		"margin":   {Margin: 0.1},
		"faults":   {Faults: wind},
		"replans":  {MaxReplans: 2},
		"altitude": {Options: Options{Altitude: units.Meters(20)}},
		"noise":    {Options: Options{Noise: Noise{Spread: 0.1, Seed: 3}}},
	}
	for _, name := range slices.Sorted(maps.Keys(knobs)) {
		k, err := knobs[name].CanonKey(base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == def {
			t.Errorf("%s: knob not keyed", name)
		}
	}
}

func TestAdaptiveCanonKeyTelemetryNeutral(t *testing.T) {
	var base canon.Key
	def, err := AdaptiveOptions{}.CanonKey(base)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := AdaptiveOptions{Options: Options{RecordEvents: true}, Workers: 8}.CanonKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if rec != def {
		t.Fatal("telemetry/worker options leaked into the key")
	}
}

func TestNilAndEmptyScheduleHashEqual(t *testing.T) {
	var base canon.Key
	a, err := AdaptiveOptions{}.CanonKey(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdaptiveOptions{Faults: &faults.Schedule{}}.CanonKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("nil and empty schedules hash differently")
	}
}
