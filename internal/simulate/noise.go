package simulate

import "math/rand"

// Noise injects stochastic disturbances into a mission: real flights draw
// more (or less) power than the nameplate model because of wind, battery
// ageing and manoeuvring, which the paper's deterministic planner cannot
// see. Each flight leg and hover segment gets an independent multiplicative
// power factor drawn from [1−Spread, 1+Spread] (clipped at ≥ 0.1), so the
// planner's energy budget may or may not survive contact with reality —
// the robustness experiment (experiments.ExtRobustness) measures how much
// capacity margin buys mission-completion probability.
type Noise struct {
	// Spread is the half-width of the uniform power-factor disturbance;
	// 0 disables noise. Typical winds: 0.05–0.25.
	Spread float64
	// Seed makes the disturbance sequence reproducible.
	Seed int64
}

// Enabled reports whether the noise model perturbs anything.
func (n Noise) Enabled() bool { return n.Spread > 0 }

// MaxFactor returns the upper bound of the per-segment power factor,
// 1 + Spread (the clip at 0.1 only raises the lower tail). The adaptive
// executor prices its fly-home reserve against this bound so the
// reachable-depot invariant survives the worst draw.
func (n Noise) MaxFactor() float64 {
	if !n.Enabled() {
		return 1
	}
	return 1 + n.Spread
}

// factors returns a deterministic generator of per-segment power factors.
func (n Noise) factors() func() float64 {
	if !n.Enabled() {
		return func() float64 { return 1 }
	}
	rng := rand.New(rand.NewSource(n.Seed))
	return func() float64 {
		f := 1 + (2*rng.Float64()-1)*n.Spread
		if f < 0.1 {
			f = 0.1
		}
		return f
	}
}
