package simulate

import (
	"math"
	"testing"

	"uavdc/internal/energy"
	"uavdc/internal/units"
)

func TestNoiseDisabledMatchesDeterministic(t *testing.T) {
	net := simNet()
	em := energy.Default()
	plan := simPlan()
	base := Run(net, em, plan, Options{})
	noisy := Run(net, em, plan, Options{Noise: Noise{Spread: 0, Seed: 5}})
	if base.EnergyUsed != noisy.EnergyUsed || base.Collected != noisy.Collected {
		t.Error("zero-spread noise changed the outcome")
	}
}

func TestNoiseReproducible(t *testing.T) {
	net := simNet()
	em := energy.Default()
	plan := simPlan()
	a := Run(net, em, plan, Options{Noise: Noise{Spread: 0.2, Seed: 9}})
	b := Run(net, em, plan, Options{Noise: Noise{Spread: 0.2, Seed: 9}})
	if a.EnergyUsed != b.EnergyUsed || a.Collected != b.Collected || a.Completed != b.Completed {
		t.Error("same seed produced different noisy missions")
	}
	c := Run(net, em, plan, Options{Noise: Noise{Spread: 0.2, Seed: 10}})
	if a.EnergyUsed == c.EnergyUsed {
		t.Error("different seeds produced identical energy draws")
	}
}

func TestNoiseChangesEnergy(t *testing.T) {
	net := simNet()
	em := energy.Default()
	plan := simPlan()
	base := Run(net, em, plan, Options{})
	noisy := Run(net, em, plan, Options{Noise: Noise{Spread: 0.2, Seed: 3}})
	if math.Abs(noisy.EnergyUsed-base.EnergyUsed) < 1e-9 {
		t.Error("20% spread left energy unchanged")
	}
}

// TestNoiseCanKillTightMissions: a plan using ~100% of the battery must
// fail under adverse noise for some seeds, and the failure accounting must
// stay physical (energy ≤ capacity).
func TestNoiseCanKillTightMissions(t *testing.T) {
	net := simNet()
	plan := simPlan()
	em := energy.Default().WithCapacity(units.Joules(plan.Energy(energy.Default()) * 1.001))
	failures := 0
	for seed := int64(0); seed < 40; seed++ {
		res := Run(net, em, plan, Options{Noise: Noise{Spread: 0.25, Seed: seed}})
		if !res.Completed {
			failures++
			if res.AbortReason == "" {
				t.Fatal("failed mission without abort reason")
			}
		}
		if res.EnergyUsed > em.Capacity.F()+1e-6 {
			t.Fatalf("seed %d: drew %v J from a %v J battery", seed, res.EnergyUsed, em.Capacity)
		}
	}
	if failures == 0 {
		t.Error("±25% noise never killed a 0.1%-margin mission across 40 seeds")
	}
	if failures == 40 {
		t.Error("every seed failed — noise looks biased")
	}
}

// TestNoiseMarginHelps: completion frequency must not decrease as the
// capacity margin grows.
func TestNoiseMarginHelps(t *testing.T) {
	net := simNet()
	plan := simPlan()
	need := plan.Energy(energy.Default())
	rate := func(margin float64) int {
		em := energy.Default().WithCapacity(units.Joules(need * margin))
		ok := 0
		for seed := int64(0); seed < 60; seed++ {
			if Run(net, em, plan, Options{Noise: Noise{Spread: 0.2, Seed: seed}}).Completed {
				ok++
			}
		}
		return ok
	}
	tight, comfy := rate(1.0), rate(1.3)
	if comfy < tight {
		t.Errorf("30%% margin completed %d/60, tight %d/60", comfy, tight)
	}
	if comfy != 60 {
		t.Errorf("30%% margin against 20%% spread should always complete, got %d/60", comfy)
	}
}

func TestVerticalEnergyInSimulator(t *testing.T) {
	net := simNet()
	plan := simPlan()
	em := energy.Default()
	em.ClimbPower = 200
	em.ClimbRate = 4
	const alt = 20.0
	// 2 climbs × 20 m × 200/4 = 2000 J extra, 10 s extra.
	flat := Run(net, em, plan, Options{})
	high := Run(net, em, plan, Options{Altitude: alt})
	if !high.Completed {
		t.Fatal(high.AbortReason)
	}
	if d := high.EnergyUsed - flat.EnergyUsed; math.Abs(d-2000) > 1e-9 {
		t.Errorf("vertical energy delta %v, want 2000", d)
	}
	if d := high.MissionTime - flat.MissionTime; math.Abs(d-10) > 1e-9 {
		t.Errorf("vertical time delta %v, want 10", d)
	}
	// Battery exactly one joule short of the ascent: dies immediately.
	tiny := em.WithCapacity(999)
	res := Run(net, tiny, plan, Options{Altitude: alt})
	if res.Completed || res.AbortReason != "battery died on ascent" {
		t.Errorf("ascent failure not detected: %+v", res.AbortReason)
	}
	// Enough for everything but the final descent.
	justShort := em.WithCapacity(units.Joules(flat.EnergyUsed + 2000 - 1))
	res = Run(net, justShort, plan, Options{Altitude: alt})
	if res.Completed || res.AbortReason != "battery died on descent" {
		t.Errorf("descent failure not detected: %q", res.AbortReason)
	}
}
