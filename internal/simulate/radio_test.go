package simulate

import (
	"math"
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/radio"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

// TestSimulatorAgreesWithPlannersUnderRadio is the end-to-end cross-check
// for the distance-dependent uplink extension: plans produced with a
// Shannon rate model and hovering altitude must complete in a simulator
// configured with the same physics and reproduce their accounting.
func TestSimulatorAgreesWithPlannersUnderRadio(t *testing.T) {
	p := sensornet.DefaultGenParams()
	p.NumSensors = 40
	p.Side = 300
	net, err := sensornet.Generate(p, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	em := energy.Default().WithCapacity(2.5e4)
	model := radio.Shannon{RefRate: units.BitsPerSecond(net.Bandwidth), RefDist: 30, RefSNR: 100, PathLossExp: 2.7}
	in := &core.Instance{Net: net, Model: em, Delta: 20, K: 2, Altitude: 30, Radio: model}
	for _, pl := range []core.Planner{&core.Algorithm1{}, &core.Algorithm2{}, &core.Algorithm3{}} {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		res := Run(net, em, plan, Options{Altitude: in.Altitude, Radio: model})
		if !res.Completed {
			t.Fatalf("%s: aborted: %s", pl.Name(), res.AbortReason)
		}
		if math.Abs(res.Collected-plan.Collected()) > 1e-6*(1+plan.Collected()) {
			t.Errorf("%s: simulator %v vs plan %v", pl.Name(), res.Collected, plan.Collected())
		}
	}
}

// TestSimulatorRadioTruncatesOptimisticPlans: a plan computed under the
// constant-B assumption but executed under harsher radio physics collects
// less than it claims — the quantitative version of the paper's
// "negligible if H is low" caveat.
func TestSimulatorRadioTruncatesOptimisticPlans(t *testing.T) {
	p := sensornet.DefaultGenParams()
	p.NumSensors = 40
	p.Side = 300
	net, err := sensornet.Generate(p, rng.New(56))
	if err != nil {
		t.Fatal(err)
	}
	em := energy.Default().WithCapacity(2e4)
	in := &core.Instance{Net: net, Model: em, Delta: 20, K: 1}
	plan, err := (&core.Algorithm2{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	harsh := radio.Shannon{RefRate: units.BitsPerSecond(net.Bandwidth), RefDist: 5, RefSNR: 50, PathLossExp: 3.5}
	res := Run(net, em, plan, Options{Altitude: 45, Radio: harsh})
	if res.Collected >= plan.Collected()-1e-6 {
		t.Errorf("harsh physics should truncate: simulated %v vs planned %v", res.Collected, plan.Collected())
	}
}
