// Package simulate executes a collection Plan against the physical model
// as an event-driven flight simulation, independently of the planners'
// own accounting. It is the ground truth the test suite uses to cross-check
// every planner: flight legs drain the battery at η_t, hover segments at
// η_h, and during a hover every scheduled sensor uploads on its own OFDMA
// channel at bandwidth B until its scheduled amount (or the battery) runs
// out. If the battery empties mid-mission the simulator reports exactly
// where and how much had been collected — planners are required to never
// trigger that.
package simulate

import (
	"fmt"
	"math"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/radio"
	"uavdc/internal/sensornet"
	"uavdc/internal/trace"
	"uavdc/internal/units"
)

// MissionEventPrefix prefixes every trace event the simulators emit; the
// full name is the prefix plus the EventKind's String() ("mission/arrive",
// "mission/replan", ...). Every attribute is deterministic for a fixed
// instance, plan, fault schedule, and noise seed — t_sim is simulated
// seconds since takeoff, not wall time — so mission event streams strip to
// byte-identical bytes like the planner spans.
const MissionEventPrefix = "mission/"

// EventKind labels a telemetry event.
type EventKind int

const (
	// EventTakeoff marks mission start at the depot.
	EventTakeoff EventKind = iota
	// EventArrive marks arrival at a stop.
	EventArrive
	// EventCollect marks the end of a hover segment.
	EventCollect
	// EventReturn marks arrival back at the depot.
	EventReturn
	// EventBatteryDead marks battery exhaustion mid-mission.
	EventBatteryDead
	// EventReplan marks a mid-flight replanning of the remaining tour
	// (adaptive executor only).
	EventReplan
	// EventDivert marks the adaptive executor abandoning the remaining
	// stops to preserve its fly-home reserve.
	EventDivert
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventTakeoff:
		return "takeoff"
	case EventArrive:
		return "arrive"
	case EventCollect:
		return "collect"
	case EventReturn:
		return "return"
	case EventBatteryDead:
		return "battery-dead"
	case EventReplan:
		return "replan"
	case EventDivert:
		return "divert"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one telemetry record.
type Event struct {
	Kind EventKind
	// Time is seconds since takeoff.
	Time float64
	// Pos is the UAV ground-projected position.
	Pos geom.Point
	// Stop is the plan stop index (-1 for depot events).
	Stop int
	// EnergyUsed is cumulative energy drawn, J.
	EnergyUsed float64
	// Collected is cumulative data gathered, MB.
	Collected float64
}

// Result is the outcome of a simulated mission.
type Result struct {
	// Completed is true when the UAV executed every stop and returned to
	// the depot with a non-negative battery.
	Completed bool
	// AbortReason is empty on success.
	AbortReason string
	// EnergyUsed is total energy drawn, J.
	EnergyUsed float64
	// FlightDistance is total distance flown, m.
	FlightDistance float64
	// HoverTime is total hover duration, s.
	HoverTime float64
	// MissionTime is total elapsed time, s.
	MissionTime float64
	// Collected is total data gathered, MB.
	Collected float64
	// PerSensor is data gathered per sensor, MB.
	PerSensor []float64
	// Events is the telemetry log (only when Options.RecordEvents).
	Events []Event
}

// Options configures a simulation run.
type Options struct {
	// RecordEvents enables the telemetry log.
	RecordEvents bool
	// Altitude is the hovering altitude H used for slant-distance rate
	// computation when Radio is set.
	Altitude units.Meters
	// Radio is the uplink rate model; nil simulates the paper's constant
	// bandwidth B.
	Radio radio.Model
	// Noise perturbs the power draw of every flight leg and hover
	// segment; the zero value is the deterministic nameplate model.
	Noise Noise
	// Trace, when non-nil and enabled, receives the mission event log as
	// MissionEventPrefix events. Recording never changes the simulation
	// outcome.
	Trace trace.Tracer
}

// rateFor returns the uplink rate for a sensor at the given ground
// distance from the hovering UAV.
func (o Options) rateFor(net *sensornet.Network, groundDist units.Meters) units.BitsPerSecond {
	if o.Radio == nil {
		return units.BitsPerSecond(net.Bandwidth)
	}
	return o.Radio.Rate(radio.SlantDist(groundDist, o.Altitude))
}

// Run simulates the plan. The plan is not required to be valid: physical
// limits are enforced during execution (a collection amount beyond
// bandwidth×sojourn is truncated; an empty battery aborts the mission), so
// the result reflects what a real mission would achieve.
func Run(net *sensornet.Network, em energy.Model, plan *core.Plan, opts Options) Result {
	res := Result{PerSensor: make([]float64, len(net.Sensors))}
	battery := em.Capacity
	pos := plan.Depot
	var now units.Seconds

	tr := trace.OrDiscard(opts.Trace)
	emit := tr.Enabled()
	log := func(kind EventKind, stop int) {
		if opts.RecordEvents {
			res.Events = append(res.Events, Event{
				Kind: kind, Time: now.F(), Pos: pos, Stop: stop,
				EnergyUsed: res.EnergyUsed, Collected: res.Collected,
			})
		}
		if emit {
			tr.Event(MissionEventPrefix+kind.String(),
				trace.Num("t_sim", now.F()),
				trace.Int("stop", stop),
				trace.Num("x", pos.X),
				trace.Num("y", pos.Y),
				trace.Num("energy_j", res.EnergyUsed),
				trace.Num("collected_mb", res.Collected),
				trace.Num("battery_j", battery.F()))
		}
	}
	abort := func(reason string) Result {
		res.AbortReason = reason
		res.MissionTime = now.F()
		log(EventBatteryDead, -1)
		return res
	}
	nextFactor := opts.Noise.factors()
	// fly attempts a leg to dst; returns false when the battery dies en
	// route (position advances to the point of failure).
	fly := func(dst geom.Point) bool {
		dist := pos.Dist(dst)
		need := units.Scale(em.TravelEnergy(units.Meters(dist)), nextFactor())
		if need <= battery+1e-12 {
			battery -= need
			res.EnergyUsed += need.F()
			res.FlightDistance += dist
			now += em.TravelTime(units.Meters(dist))
			pos = dst
			return true
		}
		frac := 0.0
		if need > 0 {
			frac = units.Ratio(battery, need)
		}
		res.EnergyUsed += battery.F()
		res.FlightDistance += dist * frac
		now += em.TravelTime(units.Meters(dist * frac))
		pos = pos.Lerp(dst, frac)
		battery = 0
		return false
	}

	log(EventTakeoff, -1)
	// Ascend to the hovering altitude (free under the paper's model, paid
	// when the energy model has a vertical component).
	if climb := em.ClimbEnergy(opts.Altitude); climb > 0 {
		if climb > battery+1e-12 {
			res.EnergyUsed += battery.F()
			battery = 0
			return abort("battery died on ascent")
		}
		battery -= climb
		res.EnergyUsed += climb.F()
		now += units.TravelTime(opts.Altitude, em.ClimbRate)
	}
	for si := range plan.Stops {
		stop := &plan.Stops[si]
		if !fly(stop.Pos) {
			return abort(fmt.Sprintf("battery died flying to stop %d", si))
		}
		log(EventArrive, si)
		// Hover: the achievable duration is capped by the battery, with
		// this segment's power disturbance applied.
		want := units.Seconds(stop.Sojourn)
		hoverFactor := nextFactor()
		canAfford := want
		if need := units.Scale(em.HoverEnergy(want), hoverFactor); need > battery {
			canAfford = units.Duration(battery, units.Scale(em.HoverPower, hoverFactor))
		}
		// Uploads proceed in parallel; each sensor delivers at most
		// rate × hover-time, at most its scheduled amount, at most its
		// stored volume minus what it already gave.
		for _, c := range stop.Collected {
			if c.Sensor < 0 || c.Sensor >= len(net.Sensors) {
				continue
			}
			rate := opts.rateFor(net, units.Meters(net.Sensors[c.Sensor].Pos.Dist(stop.Pos)))
			amt := units.Min(units.Bits(c.Amount), units.Transfer(rate, canAfford)).F()
			remain := net.Sensors[c.Sensor].Data - res.PerSensor[c.Sensor]
			amt = math.Min(amt, math.Max(remain, 0))
			res.PerSensor[c.Sensor] += amt
			res.Collected += amt
		}
		used := units.Scale(em.HoverEnergy(canAfford), hoverFactor)
		battery -= used
		res.EnergyUsed += used.F()
		res.HoverTime += canAfford.F()
		now += canAfford
		log(EventCollect, si)
		if canAfford < want-1e-12 {
			return abort(fmt.Sprintf("battery died hovering at stop %d", si))
		}
	}
	if !fly(plan.Depot) {
		return abort("battery died on the return leg")
	}
	// Descend back to the ground (symmetric cost to the ascent).
	if descend := em.ClimbEnergy(opts.Altitude); descend > 0 {
		if descend > battery+1e-12 {
			res.EnergyUsed += battery.F()
			battery = 0
			return abort("battery died on descent")
		}
		battery -= descend
		res.EnergyUsed += descend.F()
		now += units.TravelTime(opts.Altitude, em.ClimbRate)
	}
	log(EventReturn, -1)
	res.Completed = true
	res.MissionTime = now.F()
	return res
}
