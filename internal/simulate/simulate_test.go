package simulate

import (
	"math"
	"strings"
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/units"
)

func simNet() *sensornet.Network {
	return &sensornet.Network{
		Region:    geom.Square(200),
		Depot:     geom.Pt(0, 0),
		Bandwidth: 10,
		CommRange: 20,
		Sensors: []sensornet.Sensor{
			{Pos: geom.Pt(50, 0), Data: 100},
			{Pos: geom.Pt(55, 0), Data: 200},
			{Pos: geom.Pt(150, 0), Data: 50},
		},
	}
}

func simPlan() *core.Plan {
	return &core.Plan{
		Algorithm: "test",
		Depot:     geom.Pt(0, 0),
		Stops: []core.Stop{
			{Pos: geom.Pt(52, 0), Sojourn: 20, Collected: []core.Collection{
				{Sensor: 0, Amount: 100}, {Sensor: 1, Amount: 200},
			}},
			{Pos: geom.Pt(150, 0), Sojourn: 5, Collected: []core.Collection{
				{Sensor: 2, Amount: 50},
			}},
		},
	}
}

func TestRunCompletesAndMatchesPlanAccounting(t *testing.T) {
	net := simNet()
	em := energy.Default()
	plan := simPlan()
	res := Run(net, em, plan, Options{RecordEvents: true})
	if !res.Completed {
		t.Fatalf("mission aborted: %s", res.AbortReason)
	}
	if math.Abs(res.FlightDistance-plan.FlightDistance()) > 1e-9 {
		t.Errorf("flight %v vs plan %v", res.FlightDistance, plan.FlightDistance())
	}
	if math.Abs(res.HoverTime-plan.HoverTime()) > 1e-9 {
		t.Errorf("hover %v vs plan %v", res.HoverTime, plan.HoverTime())
	}
	if math.Abs(res.EnergyUsed-plan.Energy(em)) > 1e-9 {
		t.Errorf("energy %v vs plan %v", res.EnergyUsed, plan.Energy(em))
	}
	if math.Abs(res.Collected-plan.Collected()) > 1e-9 {
		t.Errorf("collected %v vs plan %v", res.Collected, plan.Collected())
	}
	if math.Abs(res.MissionTime-plan.Duration(em)) > 1e-9 {
		t.Errorf("mission time %v vs plan %v", res.MissionTime, plan.Duration(em))
	}
	// Telemetry shape: takeoff, (arrive, collect)×2, return.
	kinds := []EventKind{EventTakeoff, EventArrive, EventCollect, EventArrive, EventCollect, EventReturn}
	if len(res.Events) != len(kinds) {
		t.Fatalf("got %d events", len(res.Events))
	}
	for i, k := range kinds {
		if res.Events[i].Kind != k {
			t.Errorf("event %d = %v, want %v", i, res.Events[i].Kind, k)
		}
		if i > 0 && res.Events[i].Time < res.Events[i-1].Time {
			t.Error("events not time-ordered")
		}
	}
}

func TestRunNoEventsByDefault(t *testing.T) {
	res := Run(simNet(), energy.Default(), simPlan(), Options{})
	if res.Events != nil {
		t.Error("events recorded without RecordEvents")
	}
}

func TestRunDiesEnRoute(t *testing.T) {
	em := energy.Default().WithCapacity(300) // 30 m of flight only
	res := Run(simNet(), em, simPlan(), Options{RecordEvents: true})
	if res.Completed {
		t.Fatal("impossible mission completed")
	}
	if res.AbortReason == "" {
		t.Error("missing abort reason")
	}
	if math.Abs(res.FlightDistance-30) > 1e-9 {
		t.Errorf("died after %v m, want 30", res.FlightDistance)
	}
	if res.Collected != 0 {
		t.Error("collected data without reaching a stop")
	}
	last := res.Events[len(res.Events)-1]
	if last.Kind != EventBatteryDead {
		t.Errorf("last event %v", last.Kind)
	}
}

func TestRunDiesWhileHovering(t *testing.T) {
	// Enough to reach stop 1 (520 J) and hover ~10 s of the needed 20 s.
	em := energy.Default().WithCapacity(520 + 10*150)
	res := Run(simNet(), em, simPlan(), Options{})
	if res.Completed {
		t.Fatal("should die hovering")
	}
	// 10 s at 10 MB/s: sensor 0 gives 100 (its full amount), sensor 1
	// gives 100 of 200.
	if math.Abs(res.Collected-200) > 1e-6 {
		t.Errorf("partial collection = %v, want 200", res.Collected)
	}
	if math.Abs(res.HoverTime-10) > 1e-9 {
		t.Errorf("hover time %v, want 10", res.HoverTime)
	}
}

func TestRunDiesOnReturnLeg(t *testing.T) {
	// Exactly enough for both stops and hovers but not the 150 m home.
	plan := simPlan()
	em := energy.Default()
	need := plan.Energy(em)
	em = em.WithCapacity(units.Joules(need - 100)) // 10 m short
	res := Run(simNet(), em, plan, Options{})
	if res.Completed {
		t.Fatal("should die on return")
	}
	if res.AbortReason != "battery died on the return leg" {
		t.Errorf("reason = %q", res.AbortReason)
	}
	// All data was nevertheless gathered before the failure.
	if math.Abs(res.Collected-350) > 1e-6 {
		t.Errorf("collected %v", res.Collected)
	}
}

func TestRunTruncatesOverdraw(t *testing.T) {
	// A malicious plan claiming more than bandwidth×sojourn or more than
	// the stored volume gets physically truncated.
	net := simNet()
	plan := &core.Plan{Depot: geom.Pt(0, 0), Stops: []core.Stop{{
		Pos:     geom.Pt(52, 0),
		Sojourn: 5, // cap 50 MB per sensor
		Collected: []core.Collection{
			{Sensor: 0, Amount: 1000}, // wants 1000, cap 50
			{Sensor: 99, Amount: 50},  // unknown sensor: ignored
		},
	}}}
	res := Run(net, energy.Default(), plan, Options{})
	if !res.Completed {
		t.Fatal(res.AbortReason)
	}
	if math.Abs(res.Collected-50) > 1e-9 {
		t.Errorf("collected %v, want 50", res.Collected)
	}
}

func TestRunConservesPerSensorAcrossStops(t *testing.T) {
	// Two stops both claiming sensor 0's full volume: the second gets 0.
	net := simNet()
	plan := &core.Plan{Depot: geom.Pt(0, 0), Stops: []core.Stop{
		{Pos: geom.Pt(50, 0), Sojourn: 10, Collected: []core.Collection{{Sensor: 0, Amount: 100}}},
		{Pos: geom.Pt(50, 5), Sojourn: 10, Collected: []core.Collection{{Sensor: 0, Amount: 100}}},
	}}
	res := Run(net, energy.Default(), plan, Options{})
	if !res.Completed {
		t.Fatal(res.AbortReason)
	}
	if math.Abs(res.PerSensor[0]-100) > 1e-9 {
		t.Errorf("sensor 0 gave %v, stores 100", res.PerSensor[0])
	}
}

func TestEmptyPlanMission(t *testing.T) {
	res := Run(simNet(), energy.Default(), &core.Plan{Depot: geom.Pt(0, 0)}, Options{RecordEvents: true})
	if !res.Completed || res.EnergyUsed != 0 || res.Collected != 0 {
		t.Errorf("empty plan result %+v", res)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventTakeoff; k <= EventBatteryDead; k++ {
		if k.String() == "" {
			t.Errorf("empty String for %d", int(k))
		}
	}
	if EventKind(42).String() == "" {
		t.Error("unknown kind String empty")
	}
}

// TestSimulatorAgreesWithAllPlanners is the integration cross-check: every
// planner's plan, executed by the simulator, completes and reproduces the
// plan's own accounting.
func TestSimulatorAgreesWithAllPlanners(t *testing.T) {
	p := sensornet.DefaultGenParams()
	p.NumSensors = 50
	p.Side = 300
	net, err := sensornet.Generate(p, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	em := energy.Default().WithCapacity(4e4)
	in := &core.Instance{Net: net, Model: em, Delta: 25, K: 3}
	planners := []core.Planner{
		&core.Algorithm1{}, &core.Algorithm2{}, &core.Algorithm3{}, &core.BenchmarkPlanner{},
	}
	for _, pl := range planners {
		plan, err := pl.Plan(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		res := Run(net, em, plan, Options{})
		if !res.Completed {
			t.Fatalf("%s: mission aborted: %s", pl.Name(), res.AbortReason)
		}
		if math.Abs(res.Collected-plan.Collected()) > 1e-6*(1+plan.Collected()) {
			t.Errorf("%s: simulator collected %v, plan claims %v", pl.Name(), res.Collected, plan.Collected())
		}
		if res.EnergyUsed > em.Capacity.F()+1e-6 {
			t.Errorf("%s: energy %v over capacity", pl.Name(), res.EnergyUsed)
		}
	}
}

func TestWriteTelemetryCSV(t *testing.T) {
	res := Run(simNet(), energy.Default(), simPlan(), Options{RecordEvents: true})
	var sb strings.Builder
	if err := WriteTelemetryCSV(&sb, res.Events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(res.Events)+1 {
		t.Fatalf("csv lines %d, want %d", len(lines), len(res.Events)+1)
	}
	if !strings.HasPrefix(lines[0], "kind,time_s,") {
		t.Errorf("header = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "takeoff,") {
		t.Errorf("first event = %s", lines[1])
	}
}
