package simulate

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteTelemetryCSV exports a mission's event log as CSV
// (kind,time_s,x_m,y_m,stop,energy_j,collected_mb) for offline analysis or
// plotting. Run the mission with Options.RecordEvents to populate the log.
func WriteTelemetryCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "time_s", "x_m", "y_m", "stop", "energy_j", "collected_mb"}); err != nil {
		return err
	}
	for _, e := range events {
		rec := []string{
			e.Kind.String(),
			strconv.FormatFloat(e.Time, 'f', 3, 64),
			strconv.FormatFloat(e.Pos.X, 'f', 2, 64),
			strconv.FormatFloat(e.Pos.Y, 'f', 2, 64),
			strconv.Itoa(e.Stop),
			strconv.FormatFloat(e.EnergyUsed, 'f', 2, 64),
			strconv.FormatFloat(e.Collected, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
