// Package stats provides the small set of summary statistics the experiment
// harness needs: per-series mean, standard deviation, extrema and normal
// confidence intervals over the repeated network instances the paper
// averages (15 per data point).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean (1.96 · std / sqrt(n)); zero for n < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g std=%.3g min=%.4g max=%.4g",
		s.N, s.Mean, s.CI95(), s.Std, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs, zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs; it returns 0
// if any value is non-positive or the slice is empty. Used for speedup
// aggregation across instances.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// RelChange returns (b-a)/a, the relative change from a to b, NaN when a=0.
func RelChange(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (b - a) / a
}
