package stats

import (
	"math"
	"testing"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Errorf("CI95 of empty = %v", s.CI95())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 || s.Median != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample std sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.Mean != 5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !feq(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !feq(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestMedianOdd(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Errorf("Median = %v", m)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCI95(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // alternating 0/1, std ≈ 0.5025
	}
	s := Summarize(xs)
	want := 1.96 * s.Std / 10
	if !feq(s.CI95(), want, 1e-12) {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("Mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !feq(g, 2, 1e-12) {
		t.Errorf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestRelChange(t *testing.T) {
	if v := RelChange(100, 182); !feq(v, 0.82, 1e-12) {
		t.Errorf("RelChange = %v", v)
	}
	if !math.IsNaN(RelChange(0, 5)) {
		t.Error("RelChange(0, x) should be NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if str := s.String(); str == "" || len(str) < 10 {
		t.Errorf("String = %q", str)
	}
}
