package trace

import (
	"fmt"
	"sort"
	"strings"
)

// PhaseStat aggregates every span with one name.
type PhaseStat struct {
	Name  string
	Count int
	// Total is summed wall time; Self excludes time inside child spans.
	Total float64
	Self  float64
}

// SpanStat is one completed span instance, for the top-k listing.
type SpanStat struct {
	Name  string
	Seq   int
	Start float64
	Dur   float64
}

// MissionEvent is one "mission/..." event with its common attributes
// extracted for timeline rendering.
type MissionEvent struct {
	Seq     int
	Name    string
	Wall    float64
	TSim    float64
	Stop    int
	Battery float64
	Attrs   []Attr
}

// Summary is the analysis of one trace: per-phase attribution, the
// slowest spans, and the mission timeline with per-leg energy deltas.
type Summary struct {
	Meta    []Attr
	Records int
	Phases  []PhaseStat
	Slowest []SpanStat
	Mission []MissionEvent
	// EnergyByLeg attributes battery drops between consecutive mission
	// events carrying a battery_j attribute: EnergyByLeg[i] is the energy
	// spent arriving at Mission[i].
	EnergyByLeg []float64
	// Unbalanced counts Begin records with no matching End (a truncated
	// or mid-flight trace).
	Unbalanced int
}

func attrNum(attrs []Attr, key string) (float64, bool) {
	for _, a := range attrs {
		if a.Key == key && !a.IsStr {
			return a.Num, true
		}
	}
	return 0, false
}

// Summarize analyzes a trace via a single stack walk over the stream.
func Summarize(tr Trace, topK int) Summary {
	type open struct {
		name  string
		seq   int
		start float64
		child float64
	}
	var stack []open
	phases := map[string]*PhaseStat{}
	var spans []SpanStat
	sum := Summary{Meta: tr.Meta, Records: len(tr.Records)}

	for i, r := range tr.Records {
		switch r.Kind {
		case KindBegin:
			stack = append(stack, open{name: r.Name, seq: i, start: r.Wall})
		case KindEnd:
			if len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			dur := r.Wall - top.start
			p, ok := phases[top.name]
			if !ok {
				p = &PhaseStat{Name: top.name}
				phases[top.name] = p
			}
			p.Count++
			p.Total += dur
			p.Self += dur - top.child
			if len(stack) > 0 {
				stack[len(stack)-1].child += dur
			}
			spans = append(spans, SpanStat{Name: top.name, Seq: top.seq, Start: top.start, Dur: dur})
		case KindEvent:
			if strings.HasPrefix(r.Name, "mission/") {
				me := MissionEvent{Seq: i, Name: r.Name, Wall: r.Wall, Stop: -1, Attrs: r.Attrs}
				if v, ok := attrNum(r.Attrs, "t_sim"); ok {
					me.TSim = v
				}
				if v, ok := attrNum(r.Attrs, "stop"); ok {
					me.Stop = int(v)
				}
				if v, ok := attrNum(r.Attrs, "battery_j"); ok {
					me.Battery = v
				}
				sum.Mission = append(sum.Mission, me)
			}
		}
	}
	sum.Unbalanced = len(stack)

	sum.Phases = make([]PhaseStat, 0, len(phases))
	for _, p := range phases {
		sum.Phases = append(sum.Phases, *p)
	}
	sort.Slice(sum.Phases, func(i, j int) bool {
		if sum.Phases[i].Total != sum.Phases[j].Total {
			return sum.Phases[i].Total > sum.Phases[j].Total
		}
		return sum.Phases[i].Name < sum.Phases[j].Name
	})

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Dur != spans[j].Dur {
			return spans[i].Dur > spans[j].Dur
		}
		return spans[i].Seq < spans[j].Seq
	})
	if topK > 0 && len(spans) > topK {
		spans = spans[:topK]
	}
	sum.Slowest = spans

	sum.EnergyByLeg = make([]float64, len(sum.Mission))
	prev := -1.0
	for i, me := range sum.Mission {
		if _, ok := attrNum(me.Attrs, "battery_j"); ok {
			if prev >= 0 {
				sum.EnergyByLeg[i] = prev - me.Battery
			}
			prev = me.Battery
		}
	}
	return sum
}

// WriteText renders the summary as a stable, human-readable report.
func (s Summary) WriteText(w *strings.Builder) {
	fmt.Fprintf(w, "records: %d\n", s.Records)
	for _, a := range s.Meta {
		if a.IsStr {
			fmt.Fprintf(w, "meta %s = %s\n", a.Key, a.Str)
		} else {
			fmt.Fprintf(w, "meta %s = %g\n", a.Key, a.Num)
		}
	}
	if s.Unbalanced > 0 {
		fmt.Fprintf(w, "warning: %d unbalanced span(s)\n", s.Unbalanced)
	}
	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "\nphases (by total time):\n")
		fmt.Fprintf(w, "  %-36s %8s %12s %12s\n", "phase", "count", "total_s", "self_s")
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %-36s %8d %12.6f %12.6f\n", p.Name, p.Count, p.Total, p.Self)
		}
	}
	if len(s.Slowest) > 0 {
		fmt.Fprintf(w, "\nslowest spans:\n")
		for _, sp := range s.Slowest {
			fmt.Fprintf(w, "  #%-6d %-36s %12.6fs\n", sp.Seq, sp.Name, sp.Dur)
		}
	}
	if len(s.Mission) > 0 {
		fmt.Fprintf(w, "\nmission timeline:\n")
		fmt.Fprintf(w, "  %-18s %10s %6s %14s %14s\n", "event", "t_sim", "stop", "battery_j", "leg_energy_j")
		for i, me := range s.Mission {
			stop := ""
			if me.Stop >= 0 {
				stop = fmt.Sprintf("%d", me.Stop)
			}
			fmt.Fprintf(w, "  %-18s %10.1f %6s %14.1f %14.1f\n",
				strings.TrimPrefix(me.Name, "mission/"), me.TSim, stop, me.Battery, s.EnergyByLeg[i])
		}
	}
}

// DiffResult reports how two traces differ, ignoring wall times.
type DiffResult struct {
	// Equal is true when the stripped streams are identical.
	Equal bool
	// FirstDivergence is the sequence number of the first differing
	// record (-1 when Equal; min(len) when one stream is a prefix).
	FirstDivergence int
	// Detail describes the first divergence.
	Detail string
	// CountDelta maps record names whose occurrence counts differ to
	// (count in a) - (count in b).
	CountDelta map[string]int
}

func attrsEqual(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recordEqualStripped compares two records ignoring Wall.
func recordEqualStripped(a, b Record) bool {
	return a.Kind == b.Kind && a.Name == b.Name && a.Depth == b.Depth && attrsEqual(a.Attrs, b.Attrs)
}

// Diff compares two traces modulo timestamps. Two runs of the same
// instance at different worker counts must diff Equal.
func Diff(a, b Trace) DiffResult {
	res := DiffResult{Equal: true, FirstDivergence: -1, CountDelta: map[string]int{}}
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		if !recordEqualStripped(a.Records[i], b.Records[i]) {
			res.Equal = false
			res.FirstDivergence = i
			res.Detail = fmt.Sprintf("record %d: %c %s (depth %d) != %c %s (depth %d)",
				i, a.Records[i].Kind, a.Records[i].Name, a.Records[i].Depth,
				b.Records[i].Kind, b.Records[i].Name, b.Records[i].Depth)
			break
		}
	}
	if res.Equal && len(a.Records) != len(b.Records) {
		res.Equal = false
		res.FirstDivergence = n
		res.Detail = fmt.Sprintf("stream lengths differ: %d != %d", len(a.Records), len(b.Records))
	}
	if !res.Equal {
		for _, r := range a.Records {
			res.CountDelta[string(r.Kind)+" "+r.Name]++
		}
		for _, r := range b.Records {
			res.CountDelta[string(r.Kind)+" "+r.Name]--
		}
		for k, v := range res.CountDelta {
			if v == 0 {
				delete(res.CountDelta, k)
			}
		}
	}
	return res
}
