package trace

import (
	"time"

	"uavdc/internal/obs"
)

// Kind discriminates the three record types of a trace stream.
type Kind byte

const (
	// KindBegin opens a span.
	KindBegin Kind = 'B'
	// KindEnd closes the innermost open span.
	KindEnd Kind = 'E'
	// KindEvent is an instantaneous point event.
	KindEvent Kind = 'I'
)

// Record is one entry of a trace stream. The stream is flat: spans are a
// matched KindBegin/KindEnd pair at the same Depth, with their children
// recorded in between at Depth+1.
type Record struct {
	// Kind is the record type.
	Kind Kind
	// Name identifies the span or event (slash-separated phases for
	// planner spans, "mission/<kind>" for executor events).
	Name string
	// Depth is the span-nesting depth at which the record was emitted
	// (0 = top level).
	Depth int
	// Wall is seconds since the buffer's epoch — the only
	// non-deterministic field; exporters can strip it.
	Wall float64
	// Attrs are the record's deterministic attributes, in emission order.
	Attrs []Attr
}

// Buffer is the standard Tracer: an in-memory, sequence-ordered record
// stream. A Buffer is not safe for concurrent use; parallel sections get
// per-worker shard buffers via Shards/ShardObs, merged in worker-index
// order after the join.
type Buffer struct {
	epoch  time.Time
	detail bool
	depth  int
	recs   []Record
	meta   []Attr
	// durHist, when set, receives every closed span's duration in
	// seconds under a "trace.span_duration<WallSuffix>" histogram — the
	// obs-side span-duration distribution.
	durHist obs.Histogram
}

// DurationHistName is the obs histogram fed by ObserveDurations. It ends
// in obs.WallSuffix because span durations are wall-clock observations.
const DurationHistName = "trace.span_duration" + obs.WallSuffix

// DurationBuckets are the boundaries (seconds) of the span-duration
// histogram: 1µs … 10s in decades with a 3× midpoint.
var DurationBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
	1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

// NewBuffer returns an empty buffer whose epoch is now.
func NewBuffer() *Buffer {
	return &Buffer{epoch: time.Now()}
}

// SetDetail turns high-volume recording (per-candidate scan events) on or
// off. Shards inherit the setting.
func (b *Buffer) SetDetail(on bool) { b.detail = on }

// SetMeta sets header attributes exported with the stream (instance
// seed, planner name, worker count, ...). Later calls replace earlier
// values for the same key.
func (b *Buffer) SetMeta(attrs ...Attr) {
	for _, a := range attrs {
		replaced := false
		for i := range b.meta {
			if b.meta[i].Key == a.Key {
				b.meta[i] = a
				replaced = true
				break
			}
		}
		if !replaced {
			b.meta = append(b.meta, a)
		}
	}
}

// ObserveDurations mirrors every subsequently closed span's wall duration
// into r's DurationHistName histogram.
func (b *Buffer) ObserveDurations(r obs.Recorder) {
	b.durHist = obs.OrDiscard(r).Histogram(DurationHistName, DurationBuckets)
}

// Begin implements Tracer.
func (b *Buffer) Begin(name string, attrs ...Attr) func(end ...Attr) {
	d := b.depth
	start := time.Since(b.epoch).Seconds()
	b.recs = append(b.recs, Record{Kind: KindBegin, Name: name, Depth: d, Wall: start, Attrs: attrs})
	b.depth = d + 1
	return func(end ...Attr) {
		wall := time.Since(b.epoch).Seconds()
		b.recs = append(b.recs, Record{Kind: KindEnd, Name: name, Depth: d, Wall: wall, Attrs: end})
		b.depth = d
		if b.durHist != nil {
			b.durHist.Observe(wall - start)
		}
	}
}

// Event implements Tracer.
func (b *Buffer) Event(name string, attrs ...Attr) {
	b.recs = append(b.recs, Record{
		Kind: KindEvent, Name: name, Depth: b.depth,
		Wall: time.Since(b.epoch).Seconds(), Attrs: attrs,
	})
}

// Enabled implements Tracer.
func (b *Buffer) Enabled() bool { return true }

// Detail implements Tracer.
func (b *Buffer) Detail() bool { return b.detail }

// Len returns the number of records.
func (b *Buffer) Len() int { return len(b.recs) }

// Reset drops every record and metadata attribute, keeping the epoch and
// detail setting.
func (b *Buffer) Reset() {
	b.recs = b.recs[:0]
	b.meta = nil
	b.depth = 0
}

// shard returns a worker-private buffer sharing b's epoch, detail flag,
// and duration histogram, recording at b's current depth.
func (b *Buffer) shard() *Buffer {
	return &Buffer{epoch: b.epoch, detail: b.detail, depth: b.depth, durHist: b.durHist}
}

// merge appends s's records to b. Shard records were emitted at b's
// depth, so no re-basing is needed.
func (b *Buffer) merge(s *Buffer) {
	b.recs = append(b.recs, s.recs...)
}

// Trace is an immutable snapshot of a buffer: the export and analysis
// unit. Seq numbers are assigned at snapshot time as stream indices.
type Trace struct {
	// Meta are the header attributes set via SetMeta.
	Meta []Attr
	// Records is the full stream in sequence order.
	Records []Record
}

// Snapshot copies the buffer's current stream.
func (b *Buffer) Snapshot() Trace {
	return Trace{
		Meta:    append([]Attr(nil), b.meta...),
		Records: append([]Record(nil), b.recs...),
	}
}
