package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"uavdc/internal/wire"
)

// Schema is the version tag of the JSONL trace format. The first line of
// a stream is a header object {"schema": Schema, "meta": {...}}; every
// following line is one record {"i", "k", "name", "d", "t", "attrs"},
// with "t" (wall seconds) omitted from stripped streams and "attrs"
// omitted when empty. encoding/json sorts map keys, so for a fixed
// record stream the bytes are deterministic.
const Schema = wire.Trace

type jsonHeader struct {
	Schema string         `json:"schema"`
	Meta   map[string]any `json:"meta,omitempty"`
}

type jsonRecord struct {
	Seq   int            `json:"i"`
	Kind  string         `json:"k"`
	Name  string         `json:"name"`
	Depth int            `json:"d"`
	Wall  *float64       `json:"t,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Num
		}
	}
	return m
}

// WriteJSONL exports the trace as line-delimited JSON under the
// uavdc-trace/1 schema. When strip is true the wall-time field is
// omitted from every record, yielding a byte-deterministic stream for a
// fixed instance at any worker count.
func WriteJSONL(w io.Writer, tr Trace, strip bool) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonHeader{Schema: Schema, Meta: attrMap(tr.Meta)}); err != nil {
		return err
	}
	for i, r := range tr.Records {
		jr := jsonRecord{Seq: i, Kind: string(r.Kind), Name: r.Name, Depth: r.Depth, Attrs: attrMap(r.Attrs)}
		if !strip {
			t := r.Wall
			jr.Wall = &t
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace stream written by WriteJSONL. Attribute
// emission order is not preserved (JSON objects are unordered); attrs
// come back sorted by key. Stripped streams read back with Wall == 0.
func ReadJSONL(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Trace{}, err
		}
		return Trace{}, fmt.Errorf("trace: empty stream")
	}
	var hdr jsonHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Trace{}, fmt.Errorf("trace: bad header: %w", err)
	}
	if hdr.Schema != Schema {
		return Trace{}, fmt.Errorf("trace: schema %q, want %q", hdr.Schema, Schema)
	}
	tr := Trace{Meta: attrsFromMap(hdr.Meta)}
	for line := 1; sc.Scan(); line++ {
		if len(strings.TrimSpace(string(sc.Bytes()))) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			return Trace{}, fmt.Errorf("trace: record %d: %w", line, err)
		}
		if len(jr.Kind) != 1 {
			return Trace{}, fmt.Errorf("trace: record %d: bad kind %q", line, jr.Kind)
		}
		rec := Record{Kind: Kind(jr.Kind[0]), Name: jr.Name, Depth: jr.Depth, Attrs: attrsFromMap(jr.Attrs)}
		if jr.Wall != nil {
			rec.Wall = *jr.Wall
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr, sc.Err()
}

// attrsFromMap rebuilds an attribute list from a decoded JSON object,
// sorted by key (the map has lost emission order).
func attrsFromMap(m map[string]any) []Attr {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]Attr, 0, len(keys))
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			out = append(out, Str(k, v))
		case float64:
			out = append(out, Num(k, v))
		case bool:
			if v {
				out = append(out, Num(k, 1))
			} else {
				out = append(out, Num(k, 0))
			}
		default:
			out = append(out, Str(k, fmt.Sprint(v)))
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WriteChromeTrace exports the trace in the Chrome trace-event JSON
// array format, loadable in chrome://tracing or Perfetto. Spans become
// B/E duration events and point events become instant ("i") events, all
// on one pid/tid, with timestamps in microseconds since the epoch.
func WriteChromeTrace(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, r := range tr.Records {
		ev := map[string]any{
			"name": r.Name,
			"ts":   r.Wall * 1e6,
			"pid":  1,
			"tid":  1,
		}
		switch r.Kind {
		case KindBegin:
			ev["ph"] = "B"
		case KindEnd:
			ev["ph"] = "E"
		default:
			ev["ph"] = "i"
			ev["s"] = "t"
		}
		if args := attrMap(r.Attrs); args != nil {
			ev["args"] = args
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
