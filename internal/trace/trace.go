// Package trace is the mission flight-recorder: a zero-dependency,
// hierarchical span + event layer that composes with the obs counters.
// Planners emit phase spans (plan/alg2/iterate, tsp/christofides/matching,
// ...) and the executors emit a per-mission event log (mission/takeoff,
// mission/replan, ...), each record carrying deterministic attributes
// (battery, volume, deviation, active faults) next to its wall timestamp.
//
// Design rules, extending obs's:
//
//   - Recording never changes planner or executor output. The default
//     Tracer is Discard, a shared no-op; an unattached run pays one
//     interface call (guarded by Enabled) per potential record.
//   - The record stream is deterministic modulo timestamps: for a fixed
//     instance, stripping wall times yields a byte-identical exported
//     stream at any worker count or GOMAXPROCS. Parallel sections record
//     into per-worker shard buffers (Shards/ShardObs) that are merged in
//     worker-index order after the join; because the planners partition
//     candidates by index, the merged stream equals the serial one — the
//     trace doubles as a correctness oracle for the parallel scans.
//   - Wall timestamps are seconds since the buffer's epoch and are the
//     only non-deterministic field; exporters can strip them.
package trace

import "uavdc/internal/obs"

// Attr is one deterministic key/value attribute of a record. Exactly one
// of the string or numeric payload is meaningful.
type Attr struct {
	Key string
	// Str carries the value when IsStr; Num otherwise.
	Str   string
	Num   float64
	IsStr bool
}

// Num returns a numeric attribute.
func Num(key string, v float64) Attr { return Attr{Key: key, Num: v} }

// Int returns a numeric attribute holding an integer.
func Int(key string, v int) Attr { return Attr{Key: key, Num: float64(v)} }

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v, IsStr: true} }

// Tracer records hierarchical spans and point events. Implementations
// must be safe for serial use from one goroutine; parallel sections get
// per-worker tracers via Shards/ShardObs.
type Tracer interface {
	// Begin opens a span; calling the returned function closes it, with
	// optional result attributes attached to the end record.
	Begin(name string, attrs ...Attr) func(end ...Attr)
	// Event records a point event at the current span depth.
	Event(name string, attrs ...Attr)
	// Enabled reports whether records are being kept: callers should skip
	// attribute construction when false.
	Enabled() bool
	// Detail reports whether high-volume recording (per-candidate scan
	// events) is requested.
	Detail() bool
}

// Discard is the no-op Tracer every planner and executor defaults to.
var Discard Tracer = nop{}

type nop struct{}

func (nop) Begin(string, ...Attr) func(...Attr) { return nopEnd }
func (nop) Event(string, ...Attr)               {}
func (nop) Enabled() bool                       { return false }
func (nop) Detail() bool                        { return false }

func nopEnd(...Attr) {}

// OrDiscard resolves an optional tracer: nil becomes Discard.
func OrDiscard(t Tracer) Tracer {
	if t == nil {
		return Discard
	}
	return t
}

// Carrier is an obs.Recorder that additionally carries a Tracer — the
// composition point between the two instrumentation layers. Build one
// with With; recover the tracer with Of.
type Carrier interface {
	obs.Recorder
	TraceTracer() Tracer
}

type carrier struct {
	obs.Recorder
	t Tracer
}

func (c carrier) TraceTracer() Tracer { return c.t }

// With attaches a tracer to an obs recorder, returning a Carrier that
// records counters into r and spans/events into t. Attaching Discard (or
// nil) returns r unchanged, so uninstrumented paths keep their original
// dynamic type (notably *obs.Registry, which obs.Shards special-cases).
func With(r obs.Recorder, t Tracer) obs.Recorder {
	t = OrDiscard(t)
	if t == Discard {
		return obs.OrDiscard(r)
	}
	return carrier{obs.OrDiscard(r), t}
}

// Of recovers the tracer riding on an obs recorder, or Discard. This is
// how instrumented packages with `rec ...obs.Recorder` signatures (tsp,
// matching, orienteering) reach the trace layer without new parameters.
func Of(r obs.Recorder) Tracer {
	if c, ok := r.(Carrier); ok {
		return OrDiscard(c.TraceTracer())
	}
	return Discard
}

// obsBase unwraps a carrier to the underlying obs recorder.
func obsBase(r obs.Recorder) obs.Recorder {
	if c, ok := r.(carrier); ok {
		return c.Recorder
	}
	return r
}

// Shards returns n tracers for a parallel section with n workers. When t
// is a *Buffer every worker gets an independent shard buffer (inheriting
// the epoch and detail flag); merge them back with MergeShards after the
// join. Any other tracer is returned unsharded for every worker and must
// itself be safe for concurrent use.
func Shards(t Tracer, n int) []Tracer {
	out := make([]Tracer, n)
	b, isBuf := t.(*Buffer)
	for i := range out {
		if isBuf {
			out[i] = b.shard()
		} else {
			out[i] = t
		}
	}
	return out
}

// MergeShards appends every shard buffer's records into t in ascending
// shard order, at t's current depth. It is a no-op unless t is a *Buffer
// and the shards came from Shards.
func MergeShards(t Tracer, shards []Tracer) {
	b, ok := t.(*Buffer)
	if !ok {
		return
	}
	for _, s := range shards {
		if sb, ok := s.(*Buffer); ok && sb != b {
			b.merge(sb)
		}
	}
}

// ShardObs shards both instrumentation layers of a (possibly
// trace-carrying) obs recorder for a parallel section with n workers: the
// counter layer via obs.Shards and the trace layer via Shards, recombined
// per worker. Merge with MergeObs after the join. It replaces obs.Shards
// at the planners' parallel scans.
func ShardObs(r obs.Recorder, n int) []obs.Recorder {
	t := Of(r)
	obsShards := obs.Shards(obsBase(r), n)
	if t == Discard {
		return obsShards
	}
	tShards := Shards(t, n)
	out := make([]obs.Recorder, n)
	for i := range out {
		out[i] = With(obsShards[i], tShards[i])
	}
	return out
}

// MergeObs folds both layers of the shard recorders back into r in
// ascending shard order: counters via obs.MergeShards, trace records via
// MergeShards.
func MergeObs(r obs.Recorder, shards []obs.Recorder) {
	obsShards := make([]obs.Recorder, len(shards))
	tShards := make([]Tracer, len(shards))
	for i, s := range shards {
		obsShards[i] = obsBase(s)
		tShards[i] = Of(s)
	}
	obs.MergeShards(obsBase(r), obsShards)
	MergeShards(Of(r), tShards)
}
