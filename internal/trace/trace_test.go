package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"uavdc/internal/obs"
)

func TestDiscardIsInert(t *testing.T) {
	end := Discard.Begin("x", Num("a", 1))
	end(Num("b", 2))
	Discard.Event("y")
	if Discard.Enabled() || Discard.Detail() {
		t.Fatal("Discard must report disabled")
	}
	if OrDiscard(nil) != Discard {
		t.Fatal("OrDiscard(nil) != Discard")
	}
}

func TestBufferSpansAndDepth(t *testing.T) {
	b := NewBuffer()
	endOuter := b.Begin("outer", Str("k", "v"))
	b.Event("ev", Int("n", 3))
	endInner := b.Begin("inner")
	endInner()
	endOuter(Num("res", 1.5))

	tr := b.Snapshot()
	want := []struct {
		kind  Kind
		name  string
		depth int
	}{
		{KindBegin, "outer", 0},
		{KindEvent, "ev", 1},
		{KindBegin, "inner", 1},
		{KindEnd, "inner", 1},
		{KindEnd, "outer", 0},
	}
	if len(tr.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(tr.Records), len(want))
	}
	for i, w := range want {
		r := tr.Records[i]
		if r.Kind != w.kind || r.Name != w.name || r.Depth != w.depth {
			t.Errorf("record %d = %c %s depth %d, want %c %s depth %d",
				i, r.Kind, r.Name, r.Depth, w.kind, w.name, w.depth)
		}
	}
	if got := tr.Records[4].Attrs; len(got) != 1 || got[0].Key != "res" || got[0].Num != 1.5 {
		t.Errorf("end attrs = %v", got)
	}
}

func TestSetMetaReplaces(t *testing.T) {
	b := NewBuffer()
	b.SetMeta(Str("planner", "alg2"), Int("workers", 1))
	b.SetMeta(Int("workers", 8))
	tr := b.Snapshot()
	if len(tr.Meta) != 2 {
		t.Fatalf("meta = %v", tr.Meta)
	}
	if tr.Meta[1].Key != "workers" || tr.Meta[1].Num != 8 {
		t.Fatalf("meta = %v", tr.Meta)
	}
}

func TestShardMergeEqualsSerialOrder(t *testing.T) {
	b := NewBuffer()
	b.SetDetail(true)
	end := b.Begin("scan")
	shards := Shards(b, 3)
	for i, s := range shards {
		if !s.Detail() {
			t.Fatal("shard lost detail flag")
		}
		s.Event("scan/eval", Int("i", i))
	}
	MergeShards(b, shards)
	end()

	tr := b.Snapshot()
	var names []string
	for _, r := range tr.Records {
		if r.Kind == KindEvent {
			names = append(names, r.Name)
			// Depth inside the open span.
			if r.Depth != 1 {
				t.Errorf("event depth = %d, want 1", r.Depth)
			}
		}
	}
	if len(names) != 3 {
		t.Fatalf("got %d events, want 3", len(names))
	}
	for i, r := range tr.Records[1:4] {
		if v, ok := attrNum(r.Attrs, "i"); !ok || int(v) != i {
			t.Errorf("shard order broken at %d: %v", i, r.Attrs)
		}
	}
}

func TestCarrierWithOf(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBuffer()
	r := With(reg, b)
	if Of(r) != Tracer(b) {
		t.Fatal("Of did not recover tracer")
	}
	r.Counter("x").Inc()
	if reg.Snapshot().Counters["x"] != 1 {
		t.Fatal("carrier did not forward counters")
	}
	// Discard tracer leaves the recorder untouched.
	if With(reg, Discard) != obs.Recorder(reg) {
		t.Fatal("With(r, Discard) must return r")
	}
	if With(reg, nil) != obs.Recorder(reg) {
		t.Fatal("With(r, nil) must return r")
	}
	if Of(reg) != Discard {
		t.Fatal("Of(plain recorder) must be Discard")
	}
}

func TestShardObsMergeObs(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBuffer()
	r := With(reg, b)

	shards := ShardObs(r, 2)
	for i, s := range shards {
		s.Counter("evals").Add(int64(i + 1))
		Of(s).Event("scan/eval", Int("w", i))
	}
	MergeObs(r, shards)

	if got := reg.Snapshot().Counters["evals"]; got != 3 {
		t.Fatalf("merged counter = %d, want 3", got)
	}
	tr := b.Snapshot()
	if len(tr.Records) != 2 {
		t.Fatalf("merged records = %d, want 2", len(tr.Records))
	}
	for i, r := range tr.Records {
		if v, _ := attrNum(r.Attrs, "w"); int(v) != i {
			t.Fatalf("worker order broken: %v", tr.Records)
		}
	}

	// Without a trace layer, ShardObs degrades to obs.Shards.
	plain := ShardObs(reg, 2)
	for _, s := range plain {
		if _, ok := s.(Carrier); ok {
			t.Fatal("plain recorder grew a carrier")
		}
	}
}

func TestJSONLRoundTripAndStripDeterminism(t *testing.T) {
	mk := func() Trace {
		b := NewBuffer()
		b.SetMeta(Str("planner", "alg2"), Int("seed", 42))
		end := b.Begin("plan/alg2", Int("n", 10))
		b.Event("mission/collect", Num("battery_j", 100.5), Int("stop", 2), Str("faults", ""))
		end(Num("energy_j", 12.25))
		return b.Snapshot()
	}

	var s1, s2 bytes.Buffer
	if err := WriteJSONL(&s1, mk(), true); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&s2, mk(), true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("stripped JSONL is not byte-deterministic")
	}
	if !strings.Contains(s1.String(), Schema) {
		t.Fatal("header missing schema tag")
	}
	if strings.Contains(s1.String(), `"t":`) {
		t.Fatal("stripped stream contains wall times")
	}

	var full bytes.Buffer
	if err := WriteJSONL(&full, mk(), false); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&full)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 3 {
		t.Fatalf("round trip lost records: %d", len(back.Records))
	}
	if d := Diff(mk(), back); !d.Equal {
		// Attr order may differ after the round trip (JSON objects are
		// unordered) — compare via count deltas instead.
		if len(d.CountDelta) != 0 {
			t.Fatalf("round trip changed stream: %s %v", d.Detail, d.CountDelta)
		}
	}
}

func TestReadJSONLRejectsBadSchema(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"other/9"}` + "\n")); err == nil {
		t.Fatal("expected schema error")
	}
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("expected empty-stream error")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	b := NewBuffer()
	end := b.Begin("plan/alg3")
	b.Event("mission/replan", Int("stop", 1))
	end()
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "[") || !strings.Contains(s, `"ph"`) {
		t.Fatalf("unexpected chrome trace: %s", s)
	}
	var v []map[string]any
	if err := json.Unmarshal(out.Bytes(), &v); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(v) != 3 {
		t.Fatalf("got %d events, want 3", len(v))
	}
}

func TestSummarizePhasesAndMission(t *testing.T) {
	tr := Trace{Records: []Record{
		{Kind: KindBegin, Name: "plan/alg2", Depth: 0, Wall: 0},
		{Kind: KindBegin, Name: "plan/alg2/iterate", Depth: 1, Wall: 1},
		{Kind: KindEnd, Name: "plan/alg2/iterate", Depth: 1, Wall: 3},
		{Kind: KindEnd, Name: "plan/alg2", Depth: 0, Wall: 4},
		{Kind: KindEvent, Name: "mission/takeoff", Depth: 0, Wall: 4,
			Attrs: []Attr{Num("t_sim", 0), Num("battery_j", 100), Int("stop", -1)}},
		{Kind: KindEvent, Name: "mission/arrive", Depth: 0, Wall: 5,
			Attrs: []Attr{Num("t_sim", 10), Num("battery_j", 80), Int("stop", 0)}},
	}}
	s := Summarize(tr, 10)
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %v", s.Phases)
	}
	if s.Phases[0].Name != "plan/alg2" || s.Phases[0].Total != 4 || s.Phases[0].Self != 2 {
		t.Fatalf("outer phase = %+v", s.Phases[0])
	}
	if s.Phases[1].Name != "plan/alg2/iterate" || s.Phases[1].Self != 2 {
		t.Fatalf("inner phase = %+v", s.Phases[1])
	}
	if len(s.Mission) != 2 || s.EnergyByLeg[1] != 20 {
		t.Fatalf("mission = %+v energy = %v", s.Mission, s.EnergyByLeg)
	}
	if s.Unbalanced != 0 {
		t.Fatalf("unbalanced = %d", s.Unbalanced)
	}
	var sb strings.Builder
	s.WriteText(&sb)
	if !strings.Contains(sb.String(), "plan/alg2/iterate") || !strings.Contains(sb.String(), "takeoff") {
		t.Fatalf("report missing content:\n%s", sb.String())
	}
}

func TestDiffDetectsDivergence(t *testing.T) {
	a := Trace{Records: []Record{{Kind: KindEvent, Name: "x", Wall: 1}}}
	b := Trace{Records: []Record{{Kind: KindEvent, Name: "x", Wall: 99}}}
	if d := Diff(a, b); !d.Equal {
		t.Fatalf("wall-time-only difference must diff Equal: %+v", d)
	}
	c := Trace{Records: []Record{{Kind: KindEvent, Name: "y"}}}
	d := Diff(a, c)
	if d.Equal || d.FirstDivergence != 0 || d.CountDelta["I x"] != 1 || d.CountDelta["I y"] != -1 {
		t.Fatalf("diff = %+v", d)
	}
	e := Trace{}
	if d := Diff(a, e); d.Equal || d.FirstDivergence != 0 {
		t.Fatalf("prefix diff = %+v", d)
	}
}

func TestObserveDurations(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBuffer()
	b.ObserveDurations(reg)
	b.Begin("x")()
	snap := reg.Snapshot()
	h, ok := snap.Hists[DurationHistName]
	if !ok || h.Count != 1 {
		t.Fatalf("duration histogram = %+v", snap.Hists)
	}
	if !strings.HasSuffix(DurationHistName, obs.WallSuffix) {
		t.Fatal("span-duration histogram must be wall-suffixed")
	}
}
