package tsp

import (
	"fmt"

	"uavdc/internal/graph"
	"uavdc/internal/matching"
	"uavdc/internal/obs"
	"uavdc/internal/trace"
)

// CounterChristofidesRuns counts full Christofides constructions (tours of
// three or more items; trivial tours return without construction work).
const CounterChristofidesRuns = "tsp.christofides_runs"

// Trace span names emitted by the Christofides construction phases.
const (
	SpanChristofides         = "tsp/christofides"
	SpanChristofidesMST      = "tsp/christofides/mst"
	SpanChristofidesMatching = "tsp/christofides/matching"
	SpanChristofidesEuler    = "tsp/christofides/euler"
)

// Christofides computes a tour over items (a set of distinct indices) under
// metric m using Christofides' heuristic: minimum spanning tree, exact
// minimum-weight perfect matching on the odd-degree tree vertices, Eulerian
// circuit, and shortcutting repeated visits. On a metric instance the
// result is within 3/2 of the optimal tour (when the exact matcher is used;
// for more than matching.ExactThreshold odd vertices the greedy matcher is
// substituted and the formal guarantee is lost, though the subsequent 2-opt
// pass in practice closes the gap).
//
// Tours over 0, 1 or 2 items are returned directly. The returned tour
// begins at items[0]. An optional obs.Recorder counts runs and the
// matching solver used.
func Christofides(items []int, m Metric, rec ...obs.Recorder) (Tour, error) {
	r := obs.First(rec...)
	k := len(items)
	switch k {
	case 0:
		return Tour{}, nil
	case 1, 2:
		return Tour{Order: append([]int(nil), items...)}, nil
	}
	r.Counter(CounterChristofidesRuns).Inc()
	tr := trace.Of(r)
	end := tr.Begin(SpanChristofides, trace.Int("items", k))
	defer end()
	seen := make(map[int]bool, k)
	for _, v := range items {
		if seen[v] {
			return Tour{}, fmt.Errorf("tsp: duplicate item %d", v)
		}
		seen[v] = true
	}

	// Work in local indices 0..k-1.
	local := func(i, j int) float64 { return m(items[i], items[j]) }
	endMST := tr.Begin(SpanChristofidesMST)
	g := graph.NewComplete(k, local)
	mstEdges, ok := graph.MSTPrim(g, nil)
	endMST()
	if !ok {
		return Tour{}, fmt.Errorf("tsp: metric yields disconnected graph")
	}

	deg := make([]int, k)
	for _, e := range mstEdges {
		deg[e.U]++
		deg[e.V]++
	}
	var odd []int
	for v, d := range deg {
		if d%2 == 1 {
			odd = append(odd, v)
		}
	}

	multi := graph.NewMultigraph(k)
	for _, e := range mstEdges {
		multi.AddEdge(e.U, e.V)
	}
	if len(odd) > 0 {
		endMatch := tr.Begin(SpanChristofidesMatching, trace.Int("odd", len(odd)))
		cost := make([][]float64, len(odd))
		for i := range cost {
			cost[i] = make([]float64, len(odd))
			for j := range cost[i] {
				if i != j {
					cost[i][j] = local(odd[i], odd[j])
				}
			}
		}
		mate, _, _, err := matching.PerfectAuto(cost, r)
		if err != nil {
			endMatch()
			return Tour{}, fmt.Errorf("tsp: matching odd vertices: %w", err)
		}
		for u, v := range mate {
			if u < v {
				multi.AddEdge(odd[u], odd[v])
			}
		}
		endMatch()
	}

	endEuler := tr.Begin(SpanChristofidesEuler)
	circuit, err := multi.EulerCircuit(0)
	endEuler()
	if err != nil {
		return Tour{}, fmt.Errorf("tsp: euler circuit: %w", err)
	}

	// Shortcut repeated vertices (valid under the triangle inequality).
	visited := make([]bool, k)
	order := make([]int, 0, k)
	for _, v := range circuit {
		if !visited[v] {
			visited[v] = true
			order = append(order, items[v])
		}
	}
	return Tour{Order: order}, nil
}

// ChristofidesCost is a convenience wrapper returning just the tour cost.
func ChristofidesCost(items []int, m Metric) (float64, error) {
	t, err := Christofides(items, m)
	if err != nil {
		return 0, err
	}
	return t.Cost(m), nil
}

// MSTLowerBound returns the weight of the minimum spanning tree over items,
// a lower bound on the optimal tour cost (any tour minus one edge is a
// spanning tree). Used by tests to sandwich heuristic tours.
func MSTLowerBound(items []int, m Metric) (float64, error) {
	k := len(items)
	if k < 2 {
		return 0, nil
	}
	g := graph.NewComplete(k, func(i, j int) float64 { return m(items[i], items[j]) })
	edges, ok := graph.MSTPrim(g, nil)
	if !ok {
		return 0, fmt.Errorf("tsp: disconnected")
	}
	return graph.TotalWeight(edges), nil
}
