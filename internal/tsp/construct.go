package tsp

import (
	"fmt"
	"math"
)

// NearestNeighbor builds a tour by starting at items[0] and repeatedly
// moving to the closest unvisited item. Simple, fast (O(k²)) and a useful
// baseline/seed for local search.
func NearestNeighbor(items []int, m Metric) Tour {
	k := len(items)
	if k == 0 {
		return Tour{}
	}
	order := make([]int, 0, k)
	used := make([]bool, k)
	cur := 0
	used[0] = true
	order = append(order, items[0])
	for len(order) < k {
		best, bestD := -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if !used[i] {
				if d := m(items[cur], items[i]); d < bestD {
					best, bestD = i, d
				}
			}
		}
		used[best] = true
		order = append(order, items[best])
		cur = best
	}
	return Tour{Order: order}
}

// CheapestInsertion builds a tour by starting from items[0] and repeatedly
// inserting the unvisited item whose best insertion position increases the
// tour cost least. O(k³) worst case but excellent quality on Euclidean
// instances; used when a fresh tour over a small selected set is needed.
func CheapestInsertion(items []int, m Metric) Tour {
	k := len(items)
	if k == 0 {
		return Tour{}
	}
	order := []int{items[0]}
	used := make([]bool, k)
	used[0] = true
	for len(order) < k {
		bestItem, bestPos, bestDelta := -1, 0, math.Inf(1)
		for i := 0; i < k; i++ {
			if used[i] {
				continue
			}
			pos, delta := BestInsertion(Tour{Order: order}, items[i], m)
			if delta < bestDelta {
				bestItem, bestPos, bestDelta = i, pos, delta
			}
		}
		used[bestItem] = true
		order = append(order, 0)
		copy(order[bestPos+1:], order[bestPos:])
		order[bestPos] = items[bestItem]
	}
	return Tour{Order: order}
}

// BestInsertion returns the position pos (0..t.Len()) at which inserting
// item v into t increases the cycle cost least, and that minimum increase.
// Inserting at pos places v before t.Order[pos] (pos == t.Len() appends,
// equivalent to pos == 0 on a cycle but kept distinct for slice surgery).
//
// For a tour of < 2 items the delta is the round trip to the sole existing
// item (or 0 for an empty tour).
func BestInsertion(t Tour, v int, m Metric) (pos int, delta float64) {
	n := t.Len()
	switch n {
	case 0:
		return 0, 0
	case 1:
		return 1, 2 * m(t.Order[0], v)
	}
	pos, delta = 0, math.Inf(1)
	for i := 0; i < n; i++ {
		a := t.Order[i]
		b := t.Order[(i+1)%n]
		d := m(a, v) + m(v, b) - m(a, b)
		if d < delta {
			delta = d
			pos = i + 1
		}
	}
	return pos, delta
}

// Insert returns a new tour with item v inserted at position pos (as
// defined by BestInsertion). The receiver is not modified.
func Insert(t Tour, v int, pos int) Tour {
	if pos < 0 || pos > t.Len() {
		panic(fmt.Sprintf("tsp: insertion position %d out of range [0,%d]", pos, t.Len()))
	}
	order := make([]int, 0, t.Len()+1)
	order = append(order, t.Order[:pos]...)
	order = append(order, v)
	order = append(order, t.Order[pos:]...)
	return Tour{Order: order}
}

// Remove returns a new tour without item v and the resulting cost decrease.
// Removing an item not in the tour returns the tour unchanged with delta 0.
func Remove(t Tour, v int, m Metric) (Tour, float64) {
	i := t.IndexOf(v)
	if i < 0 {
		return t, 0
	}
	n := t.Len()
	var delta float64
	if n >= 3 {
		a := t.Order[(i-1+n)%n]
		b := t.Order[(i+1)%n]
		delta = m(a, v) + m(v, b) - m(a, b)
	} else if n == 2 {
		delta = 2 * m(t.Order[0], t.Order[1])
	}
	order := make([]int, 0, n-1)
	order = append(order, t.Order[:i]...)
	order = append(order, t.Order[i+1:]...)
	return Tour{Order: order}, delta
}
