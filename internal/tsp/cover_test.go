package tsp

import (
	"math"
	"testing"
)

func TestChristofidesCost(t *testing.T) {
	pts := randPts(12, 6)
	m := euclid(pts)
	items := allItems(12)
	c, err := ChristofidesCost(items, m)
	if err != nil {
		t.Fatal(err)
	}
	tour, err := Christofides(items, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-tour.Cost(m)) > 1e-9 {
		t.Errorf("ChristofidesCost %v != tour cost %v", c, tour.Cost(m))
	}
	if _, err := ChristofidesCost([]int{0, 0, 1}, m); err == nil {
		t.Error("duplicate items accepted")
	}
}

func TestMSTLowerBoundDegenerate(t *testing.T) {
	pts := randPts(3, 7)
	m := euclid(pts)
	if got, err := MSTLowerBound(nil, m); err != nil || got != 0 {
		t.Errorf("empty = %v, %v", got, err)
	}
	if got, err := MSTLowerBound([]int{1}, m); err != nil || got != 0 {
		t.Errorf("single = %v, %v", got, err)
	}
}
