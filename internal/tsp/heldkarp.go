package tsp

import (
	"fmt"
	"math"
)

// HeldKarpMax is the largest item count ExactHeldKarp accepts; the DP uses
// O(2^k · k) memory.
const HeldKarpMax = 16

// ExactHeldKarp computes an optimal tour over items by the Held–Karp
// dynamic program over subsets. It is exponential and restricted to
// len(items) ≤ HeldKarpMax; it exists as the ground-truth oracle for tests
// and for exact small-instance planning.
func ExactHeldKarp(items []int, m Metric) (Tour, float64, error) {
	k := len(items)
	if k > HeldKarpMax {
		return Tour{}, 0, fmt.Errorf("tsp: held-karp limited to %d items, got %d", HeldKarpMax, k)
	}
	switch k {
	case 0:
		return Tour{}, 0, nil
	case 1:
		return Tour{Order: []int{items[0]}}, 0, nil
	case 2:
		return Tour{Order: append([]int(nil), items...)}, 2 * m(items[0], items[1]), nil
	}
	// dp[mask][j]: min cost path starting at 0, visiting exactly the set
	// mask (which contains 0 and j), ending at j.
	size := 1 << k
	dp := make([][]float64, size)
	parent := make([][]int8, size)
	for mask := range dp {
		dp[mask] = make([]float64, k)
		parent[mask] = make([]int8, k)
		for j := range dp[mask] {
			dp[mask][j] = math.Inf(1)
			parent[mask][j] = -1
		}
	}
	dp[1][0] = 0
	for mask := 1; mask < size; mask++ {
		if mask&1 == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			cur := dp[mask][j]
			if math.IsInf(cur, 1) || mask&(1<<j) == 0 {
				continue
			}
			for nxt := 1; nxt < k; nxt++ {
				if mask&(1<<nxt) != 0 {
					continue
				}
				nm := mask | 1<<nxt
				if c := cur + m(items[j], items[nxt]); c < dp[nm][nxt] {
					dp[nm][nxt] = c
					parent[nm][nxt] = int8(j)
				}
			}
		}
	}
	full := size - 1
	bestJ, bestC := -1, math.Inf(1)
	for j := 1; j < k; j++ {
		if c := dp[full][j] + m(items[j], items[0]); c < bestC {
			bestJ, bestC = j, c
		}
	}
	if bestJ < 0 {
		return Tour{}, 0, fmt.Errorf("tsp: held-karp found no tour")
	}
	// Reconstruct.
	order := make([]int, k)
	mask, j := full, bestJ
	for i := k - 1; i >= 1; i-- {
		order[i] = items[j]
		pj := parent[mask][j]
		mask &^= 1 << j
		j = int(pj)
	}
	order[0] = items[0]
	return Tour{Order: order}, bestC, nil
}
