package tsp

import (
	"uavdc/internal/obs"
	"uavdc/internal/trace"
)

// SpanImprove is the trace span wrapping one Improve polish (2-opt +
// Or-opt to a fixed point).
const SpanImprove = "tsp/improve"

// Instrumentation counter names recorded by the local-search passes. A
// "pass" is one full sweep over the tour; a "move" is one accepted
// improving exchange or relocation.
const (
	CounterTwoOptPasses = "tsp.twoopt_passes"
	CounterTwoOptMoves  = "tsp.twoopt_moves"
	CounterOrOptPasses  = "tsp.oropt_passes"
	CounterOrOptMoves   = "tsp.oropt_moves"
)

// TwoOpt improves t in place by repeatedly reversing segments while an
// improving 2-exchange exists, up to maxRounds full sweeps (≤ 0 means sweep
// until no improvement). Returns the total cost reduction. The classic
// post-processing step after Christofides or insertion construction. An
// optional obs.Recorder counts sweeps and accepted moves.
func TwoOpt(t *Tour, m Metric, maxRounds int, rec ...obs.Recorder) float64 {
	n := t.Len()
	if n < 4 {
		return 0
	}
	r := obs.First(rec...)
	passes := r.Counter(CounterTwoOptPasses)
	moves := r.Counter(CounterTwoOptMoves)
	var saved float64
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		passes.Inc()
		improved := false
		for i := 0; i < n-1; i++ {
			a := t.Order[i]
			b := t.Order[i+1]
			dAB := m(a, b)
			for j := i + 2; j < n; j++ {
				// Reversing t.Order[i+1..j] replaces edges (a,b),(c,d)
				// with (a,c),(b,d).
				c := t.Order[j]
				d := t.Order[(j+1)%n]
				if i == 0 && j == n-1 {
					continue // same edge pair on the cycle
				}
				delta := m(a, c) + m(b, d) - dAB - m(c, d)
				if delta < -1e-12 {
					reverse(t.Order[i+1 : j+1])
					saved -= delta
					improved = true
					moves.Inc()
					b = t.Order[i+1]
					dAB = m(a, b)
				}
			}
		}
		if !improved {
			break
		}
	}
	return saved
}

// OrOpt improves t in place by relocating chains of 1–3 consecutive items
// to better positions, complementing 2-opt (which cannot fix misplaced
// single stops). Returns the total cost reduction. An optional
// obs.Recorder counts sweeps and accepted relocations.
func OrOpt(t *Tour, m Metric, maxRounds int, rec ...obs.Recorder) float64 {
	n := t.Len()
	if n < 4 {
		return 0
	}
	r := obs.First(rec...)
	passes := r.Counter(CounterOrOptPasses)
	moves := r.Counter(CounterOrOptMoves)
	var saved float64
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		passes.Inc()
		improved := false
		for segLen := 1; segLen <= 3 && segLen < n-1; segLen++ {
			for i := 0; i < n; i++ {
				// Segment s = positions i..i+segLen-1 (cyclic segments
				// crossing the wrap are skipped; a full sweep still sees
				// every segment in some rotation over successive rounds).
				if i+segLen > n {
					continue
				}
				prev := t.Order[(i-1+n)%n]
				segStart := t.Order[i]
				segEnd := t.Order[i+segLen-1]
				next := t.Order[(i+segLen)%n]
				if prev == segEnd || next == segStart {
					continue // segment is the whole cycle
				}
				removeGain := m(prev, segStart) + m(segEnd, next) - m(prev, next)
				if removeGain <= 1e-12 {
					continue
				}
				// Try inserting between every other edge (a, b).
				for j := 0; j < n; j++ {
					a := t.Order[j]
					b := t.Order[(j+1)%n]
					// Skip edges touching the segment or its boundary.
					if j >= i-1 && j <= i+segLen-1 {
						continue
					}
					if i == 0 && j == n-1 {
						continue
					}
					insCost := m(a, segStart) + m(segEnd, b) - m(a, b)
					if insCost < removeGain-1e-12 {
						relocate(t.Order, i, segLen, j)
						saved += removeGain - insCost
						improved = true
						moves.Inc()
						// Restart scanning this segment length.
						i = -1
						break
					}
				}
				if i == -1 {
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return saved
}

// relocate moves the segment order[i:i+segLen] so it follows the element
// originally at position j (j outside the segment).
func relocate(order []int, i, segLen, j int) {
	seg := append([]int(nil), order[i:i+segLen]...)
	rest := make([]int, 0, len(order)-segLen)
	rest = append(rest, order[:i]...)
	rest = append(rest, order[i+segLen:]...)
	// Find the element originally at position j within rest.
	target := order[j]
	pos := -1
	for k, v := range rest {
		if v == target {
			pos = k
			break
		}
	}
	out := make([]int, 0, len(order))
	out = append(out, rest[:pos+1]...)
	out = append(out, seg...)
	out = append(out, rest[pos+1:]...)
	copy(order, out)
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// Improve applies TwoOpt then OrOpt until neither helps (bounded sweeps),
// returning the total reduction. This is the standard polish the planners
// apply after construction. An optional obs.Recorder is forwarded to both
// passes.
func Improve(t *Tour, m Metric, rec ...obs.Recorder) float64 {
	r := obs.First(rec...)
	end := trace.Of(r).Begin(SpanImprove, trace.Int("items", t.Len()))
	var total float64
	for iter := 0; iter < 8; iter++ {
		d := TwoOpt(t, m, 0, r) + OrOpt(t, m, 2, r)
		total += d
		if d <= 1e-12 {
			break
		}
	}
	end(trace.Num("saved_m", total))
	return total
}
