package tsp

import "uavdc/internal/obs"

// MemoMetric materialises m over the items 0..n-1 into a dense matrix and
// returns a Metric backed by it. Every entry is the exact float64 value m
// returns, so swapping a metric for its memoised form is output-invariant
// bit for bit; the payoff is that hot loops (Christofides, insertion
// pricing, 2-opt sweeps) stop recomputing hypotenuses and instead do one
// array load. The full n×n table is filled — no symmetry assumption — so
// the wrapper is exact even for metrics that are only symmetric up to
// rounding. Memory is 8·n² bytes; callers guard n.
func MemoMetric(n int, m Metric) Metric {
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		row := d[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			row[j] = m(i, j)
		}
	}
	return func(i, j int) float64 { return d[i*n+j] }
}

// memoDenseMin is the tour size below which ImproveDense skips the
// submatrix and calls Improve directly: for tiny tours the O(t²) fill
// costs more than the sweeps save.
const memoDenseMin = 16

// ImproveDense is Improve evaluated through a dense memoised submatrix
// over the tour's own items. The local search runs on a relabelled tour
// 0..t-1 whose metric is the precomputed table of m over t.Order, so every
// comparison sees the exact same float64 values Improve would compute —
// the move sequence, the accepted tours, the recorded counters and the
// emitted trace span are all bit-identical to Improve(t, m, ...). Use it
// when m is expensive (hypot-backed or closure-chained) and the tour is
// large enough for the O(t²) fill to pay for itself.
func ImproveDense(t *Tour, m Metric, rec ...obs.Recorder) float64 {
	n := t.Len()
	if n < memoDenseMin {
		return Improve(t, m, rec...)
	}
	items := append([]int(nil), t.Order...)
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		row := d[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			row[j] = m(items[i], items[j])
		}
	}
	local := Tour{Order: make([]int, n)}
	for i := range local.Order {
		local.Order[i] = i
	}
	saved := Improve(&local, func(i, j int) float64 { return d[i*n+j] }, rec...)
	for i, li := range local.Order {
		t.Order[i] = items[li]
	}
	return saved
}
