package tsp

import (
	"uavdc/internal/geom"
	"uavdc/internal/obs"
)

// Instrumentation counters recorded by the neighbor-list 2-opt pass. As
// with the plain passes, a "pass" is one sweep over the items and a "move"
// is one accepted exchange.
const (
	CounterDLBPasses = "tsp.dlb_passes"
	CounterDLBMoves  = "tsp.dlb_moves"
)

// NeighborLists builds, for every point, the ids of its k nearest other
// points ordered by (squared distance, id) ascending. This is the move
// candidate list for TwoOptDLB: restricting 2-opt to geometric neighbors
// is what turns the quadratic inner scan into a constant-width one.
//
// The lists are computed with the spatial index's kNN query, so
// construction is near-linear in len(pts) for uniform layouts.
func NeighborLists(pts []geom.Point, k int) [][]int32 {
	if k < 0 {
		k = 0
	}
	idx := geom.NewIndex(pts, 0)
	lists := make([][]int32, len(pts))
	buf := make([]int32, 0, k+1)
	for i := range pts {
		// Ask for one extra id: the point itself always ranks first
		// (distance 0, and the id tie-break favors no other duplicate
		// only if its id is smaller — so filter by id, not by position).
		buf = idx.KNearestAppend(buf[:0], pts[i], k+1)
		list := make([]int32, 0, k)
		for _, id := range buf {
			if int(id) != i && len(list) < k {
				list = append(list, id)
			}
		}
		lists[i] = list
	}
	return lists
}

// TwoOptDLB improves t in place with neighbor-list 2-opt and don't-look
// bits: an item whose candidate moves were all tried unsuccessfully is
// skipped on later sweeps until one of its tour edges changes. Items must
// be a permutation of 0..n-1 (the natural labelling for matrix metrics and
// for the neighbors slice); neighbors[v] must be sorted by distance from v
// ascending, as NeighborLists produces, because the scan prunes on the
// first candidate at least as far as both tour edges of v.
//
// The result is deterministic for fixed inputs, but it is a different
// (equally valid) local optimum than TwoOpt's: candidate order and the
// don't-look schedule change which improving move is applied first. It is
// therefore NOT used on the parity-locked planner paths — see the
// "Fast-path parity contract" section of EXPERIMENTS.md — and exists for
// scale regimes where the quadratic sweep is unaffordable.
//
// maxRounds bounds the number of sweeps (≤ 0 means sweep until no
// improvement). Returns the total cost reduction. An optional obs.Recorder
// counts sweeps and accepted moves.
func TwoOptDLB(t *Tour, m Metric, neighbors [][]int32, maxRounds int, rec ...obs.Recorder) float64 {
	n := t.Len()
	if n < 4 {
		return 0
	}
	r := obs.First(rec...)
	passes := r.Counter(CounterDLBPasses)
	moves := r.Counter(CounterDLBMoves)

	pos := make([]int, n)
	for i, v := range t.Order {
		pos[v] = i
	}
	dontLook := make([]bool, n)

	var saved float64
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		passes.Inc()
		improved := false
		for a := 0; a < n; a++ {
			if dontLook[a] {
				continue
			}
			moved := false
			for {
				gain, lo, hi, ok := dlbBestMove(t, m, neighbors[a], pos, a)
				if !ok {
					break
				}
				// The four endpoints of the removed edges get fresh looks.
				x1, x2 := t.Order[lo], t.Order[lo+1]
				y1, y2 := t.Order[hi], t.Order[(hi+1)%n]
				reverse(t.Order[lo+1 : hi+1])
				for p := lo + 1; p <= hi; p++ {
					pos[t.Order[p]] = p
				}
				dontLook[x1], dontLook[x2] = false, false
				dontLook[y1], dontLook[y2] = false, false
				saved += gain
				moved = true
				moves.Inc()
			}
			if moved {
				improved = true
			} else {
				dontLook[a] = true
			}
		}
		if !improved {
			break
		}
	}
	return saved
}

// dlbBestMove returns the first improving 2-opt move involving one of a's
// tour edges and a candidate edge incident to one of a's neighbors,
// first-improvement over the neighbor list. The move is returned as the
// reversal bounds [lo+1, hi] on the current order.
func dlbBestMove(t *Tour, m Metric, neighbors []int32, pos []int, a int) (gain float64, lo, hi int, ok bool) {
	n := t.Len()
	i := pos[a]
	succ := t.Order[(i+1)%n]
	pred := t.Order[(i-1+n)%n]
	dSucc := m(a, succ)
	dPred := m(pred, a)
	for _, c32 := range neighbors {
		c := int(c32)
		if c == a {
			continue
		}
		dAC := m(a, c)
		if dAC >= dSucc && dAC >= dPred {
			// Neighbors are distance-sorted: every remaining candidate
			// edge (a, c) is at least as long as both removed edges, so
			// no further move through a can gain.
			break
		}
		j := pos[c]
		if dAC < dSucc {
			// Remove (a, succ) and (c, succC); add (a, c), (succ, succC).
			succC := t.Order[(j+1)%n]
			delta := dAC + m(succ, succC) - dSucc - m(c, succC)
			if delta < -1e-12 {
				if lo, hi, ok := reversalBounds(i, j, n); ok {
					return -delta, lo, hi, true
				}
			}
		}
		if dAC < dPred {
			// Remove (pred, a) and (predC, c); add (pred, predC), (a, c).
			predC := t.Order[(j-1+n)%n]
			delta := dAC + m(pred, predC) - dPred - m(predC, c)
			if delta < -1e-12 {
				if lo, hi, ok := reversalBounds((i-1+n)%n, (j-1+n)%n, n); ok {
					return -delta, lo, hi, true
				}
			}
		}
	}
	return 0, 0, 0, false
}

// reversalBounds maps the two removed edges, identified by the positions p
// and q of their first endpoints, to the in-place reversal Order[lo+1..hi].
// The move is rejected (ok == false) when the edges coincide or are
// adjacent on the cycle, where a 2-exchange degenerates to a no-op.
func reversalBounds(p, q, n int) (lo, hi int, ok bool) {
	lo, hi = p, q
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo < 2 || (lo == 0 && hi == n-1) {
		return 0, 0, false
	}
	return lo, hi, true
}
