package tsp

import (
	"math"
	"testing"

	"uavdc/internal/geom"
	"uavdc/internal/obs"
)

func dlbInstance(n int, seed uint64) ([]geom.Point, Metric) {
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: float64(next()%100000) / 100,
			Y: float64(next()%100000) / 100,
		}
	}
	m := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	return pts, m
}

func identityTour(n int) *Tour {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return &Tour{Order: order}
}

func TestNeighborListsSortedAndSelfFree(t *testing.T) {
	pts, _ := dlbInstance(60, 1)
	// Duplicate a few points so exact ties exercise the id tie-break.
	pts[10], pts[11] = pts[3], pts[3]
	lists := NeighborLists(pts, 8)
	if len(lists) != len(pts) {
		t.Fatalf("got %d lists for %d points", len(lists), len(pts))
	}
	for i, list := range lists {
		if len(list) != 8 {
			t.Fatalf("point %d: %d neighbors, want 8", i, len(list))
		}
		prev := -1.0
		for _, id := range list {
			if int(id) == i {
				t.Fatalf("point %d lists itself as a neighbor", i)
			}
			d2 := pts[i].Dist2(pts[id])
			if d2 < prev {
				t.Fatalf("point %d: neighbor distances not ascending", i)
			}
			prev = d2
		}
	}
}

func TestNeighborListsSmall(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	lists := NeighborLists(pts, 5) // k exceeds n-1
	want := [][]int32{{1, 2}, {0, 2}, {1, 0}}
	for i := range want {
		if len(lists[i]) != len(want[i]) {
			t.Fatalf("point %d: %v, want %v", i, lists[i], want[i])
		}
		for j := range want[i] {
			if lists[i][j] != want[i][j] {
				t.Fatalf("point %d: %v, want %v", i, lists[i], want[i])
			}
		}
	}
	if got := NeighborLists(nil, 3); len(got) != 0 {
		t.Fatalf("NeighborLists(nil) = %v", got)
	}
}

// TestTwoOptDLBImproves checks the contract that matters for a local
// search: the tour stays a permutation, the reported saving matches the
// actual cost reduction, and the result is no worse than the input.
func TestTwoOptDLBImproves(t *testing.T) {
	for _, n := range []int{4, 12, 80, 200} {
		pts, m := dlbInstance(n, uint64(n)*0x9E3779B9+1)
		neighbors := NeighborLists(pts, 10)
		tour := identityTour(n)
		before := tour.Cost(m)
		saved := TwoOptDLB(tour, m, neighbors, 0)
		after := tour.Cost(m)
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		if err := tour.Validate(items); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if saved < 0 {
			t.Fatalf("n=%d: negative saving %v", n, saved)
		}
		if math.Abs((before-after)-saved) > 1e-6*math.Max(1, before) {
			t.Fatalf("n=%d: reported saving %v but cost went %v -> %v", n, saved, before, after)
		}
	}
}

// TestTwoOptDLBDeterministic pins run-to-run reproducibility: identical
// inputs must yield the identical tour and counter values.
func TestTwoOptDLBDeterministic(t *testing.T) {
	pts, m := dlbInstance(150, 7)
	neighbors := NeighborLists(pts, 10)
	run := func() ([]int, float64, int64, int64) {
		rec := obs.NewRegistry()
		tour := identityTour(len(pts))
		saved := TwoOptDLB(tour, m, neighbors, 0, rec)
		snap := rec.Snapshot()
		return tour.Order, saved, snap.Counters[CounterDLBPasses], snap.Counters[CounterDLBMoves]
	}
	o1, s1, p1, m1 := run()
	o2, s2, p2, m2 := run()
	if s1 != s2 || p1 != p2 || m1 != m2 { // exact compare: determinism check requires bit equality
		t.Fatalf("runs differ: saved %v vs %v, passes %d vs %d, moves %d vs %d", s1, s2, p1, p2, m1, m2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("tour orders differ at %d: %d vs %d", i, o1[i], o2[i])
		}
	}
	if m1 == 0 {
		t.Fatalf("expected at least one improving move on a random identity tour")
	}
}

// TestTwoOptDLBNearTwoOptQuality compares the restricted search against
// the exhaustive sweep: with a reasonable neighbor width the DLB tour must
// land within a few percent of plain 2-opt's optimum on random instances.
func TestTwoOptDLBNearTwoOptQuality(t *testing.T) {
	for _, seed := range []uint64{3, 11, 29} {
		pts, m := dlbInstance(120, seed)
		neighbors := NeighborLists(pts, 12)

		full := identityTour(len(pts))
		TwoOpt(full, m, 0)
		fullCost := full.Cost(m)

		dlb := identityTour(len(pts))
		TwoOptDLB(dlb, m, neighbors, 0)
		dlbCost := dlb.Cost(m)

		if dlbCost > fullCost*1.10 {
			t.Fatalf("seed %d: DLB cost %.1f is more than 10%% above full 2-opt %.1f", seed, dlbCost, fullCost)
		}
	}
}

func TestTwoOptDLBDegenerate(t *testing.T) {
	pts, m := dlbInstance(3, 5)
	neighbors := NeighborLists(pts, 2)
	tour := identityTour(3)
	if saved := TwoOptDLB(tour, m, neighbors, 0); saved != 0 { // exact compare: degenerate tours must be untouched
		t.Fatalf("n=3 tour should be a no-op, saved %v", saved)
	}
}

// Micro-benchmarks: the exhaustive sweep against the neighbor-list pass at
// the same instance size, for the speedup table in BENCH_PR6.json's
// provenance. Run with `make bench-micro` or
// `go test -bench 'TwoOpt' -run XXX ./internal/tsp/`.
func benchTour(b *testing.B, n int, dlb bool) {
	pts, m := dlbInstance(n, 0xC0FFEE)
	var neighbors [][]int32
	if dlb {
		neighbors = NeighborLists(pts, 10)
	}
	order := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range order {
			order[j] = j
		}
		tour := &Tour{Order: order}
		if dlb {
			TwoOptDLB(tour, m, neighbors, 0)
		} else {
			TwoOpt(tour, m, 0)
		}
	}
}

func BenchmarkTwoOptFull400(b *testing.B) { benchTour(b, 400, false) }
func BenchmarkTwoOptDLB400(b *testing.B)  { benchTour(b, 400, true) }
