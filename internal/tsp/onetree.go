package tsp

import (
	"math"
)

// OneTreeBound computes the Held–Karp 1-tree lower bound on the optimal
// tour cost over items: the maximum over node potentials π of
// (min 1-tree weight under w(i,j)+π_i+π_j) − 2·Σπ, approached by
// subgradient ascent. It dominates the plain MST bound and typically
// reaches 98–99% of the optimum on Euclidean instances, which makes it the
// sharp yardstick tests use to certify heuristic tour quality without an
// exponential oracle. iterations ≤ 0 selects a sensible default.
func OneTreeBound(items []int, m Metric, iterations int) (float64, error) {
	k := len(items)
	if k < 3 {
		if k == 2 {
			return 2 * m(items[0], items[1]), nil
		}
		return 0, nil
	}
	if iterations <= 0 {
		iterations = 60
	}
	pi := make([]float64, k)
	adjusted := func(i, j int) float64 {
		return m(items[i], items[j]) + pi[i] + pi[j]
	}
	// Classical Polyak step: t = α·(UB − L(π)) / ‖deg−2‖², with a cheap
	// heuristic tour as the upper bound and α halved after stretches
	// without progress.
	ubTour := NearestNeighbor(items, m)
	TwoOpt(&ubTour, m, 2)
	ub := ubTour.Cost(m)

	best := math.Inf(-1)
	alpha := 2.0
	sinceImproved := 0
	for iter := 0; iter < iterations; iter++ {
		weight, deg, ok := minOneTree(k, adjusted)
		if !ok {
			return 0, errDisconnected
		}
		var piSum float64
		for _, p := range pi {
			piSum += p
		}
		lb := weight - 2*piSum
		if lb > best {
			best = lb
			sinceImproved = 0
		} else {
			sinceImproved++
			if sinceImproved >= 5 {
				alpha /= 2
				sinceImproved = 0
			}
		}
		var norm float64
		for i := 0; i < k; i++ {
			d := float64(deg[i] - 2)
			norm += d * d
		}
		if norm == 0 { //uavdc:allow floateq norm sums squared integer degree deviations; exact zero means every degree is 2
			break // the 1-tree is a tour: the bound is tight
		}
		gap := ub - lb
		if gap <= 0 {
			break // bound met the heuristic tour: cannot certify further
		}
		step := alpha * gap / norm
		for i := 0; i < k; i++ {
			pi[i] += step * float64(deg[i]-2)
		}
	}
	return best, nil
}

var errDisconnected = errDisc{}

type errDisc struct{}

func (errDisc) Error() string { return "tsp: metric yields disconnected graph" }

// minOneTree returns the weight and degree sequence of a minimum 1-tree:
// an MST over nodes 1..k-1 plus node 0 connected by its two cheapest
// edges. A local Prim is used because the potential-adjusted weights may
// be negative, which the shared graph package (built for energy costs)
// rejects by design.
func minOneTree(k int, w func(i, j int) float64) (float64, []int, bool) {
	deg := make([]int, k)
	inTree := make([]bool, k)
	bestW := make([]float64, k)
	bestTo := make([]int, k)
	for i := 1; i < k; i++ {
		bestW[i] = math.Inf(1)
		bestTo[i] = -1
	}
	bestW[1] = 0
	var weight float64
	for iter := 1; iter < k; iter++ {
		sel := -1
		for i := 1; i < k; i++ {
			if !inTree[i] && (sel < 0 || bestW[i] < bestW[sel]) {
				sel = i
			}
		}
		if sel < 0 || math.IsInf(bestW[sel], 1) {
			return 0, nil, false
		}
		inTree[sel] = true
		if bestTo[sel] >= 0 {
			weight += bestW[sel]
			deg[sel]++
			deg[bestTo[sel]]++
		}
		for i := 1; i < k; i++ {
			if !inTree[i] {
				if c := w(sel, i); c < bestW[i] {
					bestW[i] = c
					bestTo[i] = sel
				}
			}
		}
	}
	// Two cheapest edges incident to node 0.
	best1, best2 := math.Inf(1), math.Inf(1)
	i1, i2 := -1, -1
	for j := 1; j < k; j++ {
		c := w(0, j)
		switch {
		case c < best1:
			best2, i2 = best1, i1
			best1, i1 = c, j
		case c < best2:
			best2, i2 = c, j
		}
	}
	weight += best1 + best2
	deg[0] = 2
	deg[i1]++
	deg[i2]++
	return weight, deg, true
}
