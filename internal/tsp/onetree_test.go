package tsp

import (
	"math"
	"testing"
)

func TestOneTreeBoundDegenerate(t *testing.T) {
	pts := randPts(3, 1)
	m := euclid(pts)
	if lb, err := OneTreeBound(nil, m, 0); err != nil || lb != 0 {
		t.Errorf("empty: %v %v", lb, err)
	}
	if lb, err := OneTreeBound([]int{0}, m, 0); err != nil || lb != 0 {
		t.Errorf("single: %v %v", lb, err)
	}
	lb, err := OneTreeBound([]int{0, 1}, m, 0)
	if err != nil || math.Abs(lb-2*m(0, 1)) > 1e-12 {
		t.Errorf("pair: %v %v", lb, err)
	}
}

// TestOneTreeBoundSandwich: MST ≤ 1-tree bound ≤ optimum, on instances
// small enough for Held–Karp DP.
func TestOneTreeBoundSandwich(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 8 + int(seed)%5
		pts := randPts(n, 700+seed)
		m := euclid(pts)
		items := allItems(n)
		_, opt, err := ExactHeldKarp(items, m)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := MSTLowerBound(items, m)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := OneTreeBound(items, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if lb > opt+1e-6 {
			t.Fatalf("seed %d: bound %v above optimum %v", seed, lb, opt)
		}
		if lb < mst-1e-6 {
			t.Fatalf("seed %d: bound %v below MST %v — ascent lost ground", seed, lb, mst)
		}
		// The ascent should close most of the MST↔OPT gap.
		if opt > mst && (lb-mst)/(opt-mst) < 0.5 {
			t.Errorf("seed %d: bound closed only %.0f%% of the gap (mst %v, lb %v, opt %v)",
				seed, 100*(lb-mst)/(opt-mst), mst, lb, opt)
		}
	}
}

// TestOneTreeBoundCertifiesChristofides: on larger instances without an
// exact oracle, Christofides+Improve must land within 1.5× of the 1-tree
// bound (it is guaranteed within 1.5× of OPT ≥ bound).
func TestOneTreeBoundCertifiesChristofides(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		pts := randPts(60, 900+seed)
		m := euclid(pts)
		items := allItems(60)
		tour, err := Christofides(items, m)
		if err != nil {
			t.Fatal(err)
		}
		Improve(&tour, m)
		lb, err := OneTreeBound(items, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := tour.Cost(m)
		if c < lb-1e-6 {
			t.Fatalf("seed %d: tour %v below the lower bound %v", seed, c, lb)
		}
		if c > 1.5*lb {
			t.Errorf("seed %d: tour %v above 1.5× bound %v", seed, c, 1.5*lb)
		}
		// Polished tours on random Euclidean instances sit within ~5% of
		// the bound; allow 10% before complaining.
		if c > 1.10*lb {
			t.Errorf("seed %d: tour %v more than 10%% above bound %v", seed, c, lb)
		}
	}
}
