package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uavdc/internal/geom"
)

// TestQuickTwoOptNeverWorsens: for arbitrary seeds and sizes, 2-opt must
// not increase tour cost, must preserve the visited set, and the reported
// saving must equal the observed difference.
func TestQuickTwoOptNeverWorsens(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := 4 + int(rawN)%40
		pts := randPts(n, seed)
		m := euclid(pts)
		items := allItems(n)
		tour := NearestNeighbor(items, m)
		before := tour.Cost(m)
		saved := TwoOpt(&tour, m, 0)
		after := tour.Cost(m)
		if tour.Validate(items) != nil {
			return false
		}
		if after > before+1e-9 {
			return false
		}
		return abs(before-saved-after) < 1e-6*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickInsertRemoveInverse: removing a freshly inserted item restores
// the original cost exactly.
func TestQuickInsertRemoveInverse(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := 3 + int(rawN)%20
		pts := randPts(n+1, seed)
		m := euclid(pts)
		tour := CheapestInsertion(allItems(n), m)
		base := tour.Cost(m)
		pos, delta := BestInsertion(tour, n, m)
		grown := Insert(tour, n, pos)
		shrunk, dec := Remove(grown, n, m)
		if abs(grown.Cost(m)-(base+delta)) > 1e-9 {
			return false
		}
		if abs(dec-delta) > 1e-9 {
			return false
		}
		return abs(shrunk.Cost(m)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickChristofidesSandwich: MST ≤ tour ≤ 2·MST on arbitrary Euclidean
// instances.
func TestQuickChristofidesSandwich(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := 3 + int(rawN)%30
		pts := randPts(n, seed)
		m := euclid(pts)
		items := allItems(n)
		tour, err := Christofides(items, m)
		if err != nil {
			return false
		}
		mst, err := MSTLowerBound(items, m)
		if err != nil {
			return false
		}
		c := tour.Cost(m)
		return c >= mst-1e-6 && c <= 2*mst+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickTourCostRotationInvariant: the cycle cost is invariant under
// rotation of the visiting order.
func TestQuickTourCostRotationInvariant(t *testing.T) {
	f := func(seed int64, rawN, rawShift uint8) bool {
		n := 3 + int(rawN)%20
		pts := randPts(n, seed)
		m := euclid(pts)
		tour := NearestNeighbor(allItems(n), m)
		want := tour.Cost(m)
		rot := tour.Clone()
		rot.RotateTo(tour.Order[int(rawShift)%n])
		return abs(rot.Cost(m)-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickClusteredInstances exercises Christofides on degenerate layouts
// (many coincident points), where zero-length edges stress the matching
// and shortcut steps.
func TestQuickClusteredInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts []geom.Point
		for c := 0; c < 3; c++ {
			p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			for i := 0; i < 4; i++ {
				pts = append(pts, p) // exact duplicates
			}
		}
		m := euclid(pts)
		items := allItems(len(pts))
		tour, err := Christofides(items, m)
		if err != nil {
			return false
		}
		return tour.Validate(items) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
