package tsp

// ThreeOpt improves t in place with first-improvement 3-opt moves: three
// tour edges are removed and the segments reconnected in the best of the
// seven non-identity recombinations. Strictly stronger than 2-opt (whose
// moves are a subset) at O(n³) per sweep; the planners keep to 2-opt/Or-opt
// for speed and determinism of published numbers, while ThreeOpt is
// available for offline polishing (and as the quality yardstick in tests).
// Returns the total cost reduction over at most maxRounds sweeps (≤ 0 means
// until no improvement).
func ThreeOpt(t *Tour, m Metric, maxRounds int) float64 {
	n := t.Len()
	if n < 5 {
		return TwoOpt(t, m, maxRounds)
	}
	var saved float64
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		improved := false
		// Cut points i<j<k split the cycle into segments
		// A = t[0..i], B = t[i+1..j], C = t[j+1..k] (indices cyclic on the
		// closing edge k→0).
		for i := 0; i < n-2 && !improved; i++ {
			for j := i + 1; j < n-1 && !improved; j++ {
				for k := j + 1; k < n && !improved; k++ {
					if gain := tryThreeOpt(t, m, i, j, k); gain > 1e-12 {
						saved += gain
						improved = true
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return saved
}

// tryThreeOpt evaluates the seven reconnections of the cuts after
// positions i, j, k and applies the best improving one. Returns the gain
// (0 when no reconnection improves).
func tryThreeOpt(t *Tour, m Metric, i, j, k int) float64 {
	n := t.Len()
	a, b := t.Order[i], t.Order[(i+1)%n]
	c, d := t.Order[j], t.Order[(j+1)%n]
	e, f := t.Order[k], t.Order[(k+1)%n]
	d0 := m(a, b) + m(c, d) + m(e, f)

	// The seven proper reconnections, expressed as which segments get
	// reversed (B = positions i+1..j, C = positions j+1..k) and whether B
	// and C swap order. Cases 1–3 are 2-opt moves; 4–7 are true 3-opt.
	type move struct {
		cost   float64
		revB   bool
		revC   bool
		swapBC bool
	}
	moves := []move{
		{cost: m(a, c) + m(b, d) + m(e, f), revB: true},                           // reverse B
		{cost: m(a, b) + m(c, e) + m(d, f), revC: true},                           // reverse C
		{cost: m(a, c) + m(b, e) + m(d, f), revB: true, revC: true},               // reverse both
		{cost: m(a, d) + m(e, b) + m(c, f), swapBC: true},                         // swap B and C
		{cost: m(a, d) + m(e, c) + m(b, f), swapBC: true, revB: true},             // swap, reverse B
		{cost: m(a, e) + m(d, b) + m(c, f), swapBC: true, revC: true},             // swap, reverse C
		{cost: m(a, e) + m(d, c) + m(b, f), swapBC: true, revB: true, revC: true}, // swap, reverse both
	}
	bestGain := 0.0
	bestIdx := -1
	for mi, mv := range moves {
		if gain := d0 - mv.cost; gain > bestGain+1e-12 {
			bestGain = gain
			bestIdx = mi
		}
	}
	if bestIdx < 0 {
		return 0
	}
	mv := moves[bestIdx]
	segB := append([]int(nil), t.Order[i+1:j+1]...)
	segC := append([]int(nil), t.Order[j+1:k+1]...)
	if mv.revB {
		reverse(segB)
	}
	if mv.revC {
		reverse(segC)
	}
	out := make([]int, 0, n)
	out = append(out, t.Order[:i+1]...)
	if mv.swapBC {
		out = append(out, segC...)
		out = append(out, segB...)
	} else {
		out = append(out, segB...)
		out = append(out, segC...)
	}
	out = append(out, t.Order[k+1:]...)
	copy(t.Order, out)
	return bestGain
}
