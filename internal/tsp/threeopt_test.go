package tsp

import (
	"math"
	"testing"
)

func TestThreeOptGainAccounting(t *testing.T) {
	// Every applied move's predicted gain must equal the observed cost
	// drop — this catches any mispairing of cost formulas and segment
	// operations.
	for seed := int64(0); seed < 10; seed++ {
		pts := randPts(20, seed)
		m := euclid(pts)
		items := allItems(20)
		tour := NearestNeighbor(items, m)
		before := tour.Cost(m)
		saved := ThreeOpt(&tour, m, 0)
		after := tour.Cost(m)
		if err := tour.Validate(items); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(before-saved-after) > 1e-6*(1+before) {
			t.Fatalf("seed %d: claimed saving %v, actual %v", seed, saved, before-after)
		}
	}
}

func TestThreeOptAtLeastTwoOpt(t *testing.T) {
	// From the same start, a full 3-opt pass must end at a cost no worse
	// than a full 2-opt pass (3-opt's move set strictly contains 2-opt's
	// — first-improvement search order differs, so compare via a 2-opt
	// pass applied after 3-opt stalls: it must find nothing).
	for seed := int64(0); seed < 8; seed++ {
		pts := randPts(25, 100+seed)
		m := euclid(pts)
		tour := NearestNeighbor(allItems(25), m)
		ThreeOpt(&tour, m, 0)
		if extra := TwoOpt(&tour, m, 0); extra > 1e-9 {
			t.Errorf("seed %d: 2-opt improved a 3-opt-optimal tour by %v", seed, extra)
		}
	}
}

func TestThreeOptReachesOptimumSmall(t *testing.T) {
	hits := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		pts := randPts(9, 200+seed)
		m := euclid(pts)
		items := allItems(9)
		_, opt, err := ExactHeldKarp(items, m)
		if err != nil {
			t.Fatal(err)
		}
		tour := NearestNeighbor(items, m)
		ThreeOpt(&tour, m, 0)
		if tour.Cost(m) < opt-1e-6 {
			t.Fatalf("seed %d: 3-opt beat Held–Karp", seed)
		}
		if tour.Cost(m) < opt+1e-6 {
			hits++
		}
	}
	// 3-opt from a NN start finds the true optimum on most 9-point
	// instances; demand a solid majority.
	if hits < trials*6/10 {
		t.Errorf("3-opt hit the optimum on only %d/%d instances", hits, trials)
	}
}

func TestThreeOptTinyDelegatesToTwoOpt(t *testing.T) {
	pts := randPts(4, 3)
	m := euclid(pts)
	tour := NearestNeighbor(allItems(4), m)
	before := tour.Cost(m)
	saved := ThreeOpt(&tour, m, 0)
	if math.Abs(before-saved-tour.Cost(m)) > 1e-9 {
		t.Error("tiny-instance delegation broke accounting")
	}
}

func BenchmarkThreeOpt50(b *testing.B) {
	pts := randPts(50, 5)
	m := euclid(pts)
	items := allItems(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tour := NearestNeighbor(items, m)
		ThreeOpt(&tour, m, 0)
	}
}
