// Package tsp provides travelling-salesman tours over arbitrary metrics:
// Christofides' 3/2-approximation (the algorithm the paper uses for tour
// construction in Algorithm 2/3 and in the evaluation benchmark), nearest
// neighbour, cheapest insertion (including the incremental form the greedy
// planners use to price candidate hovering locations), 2-opt / Or-opt local
// search, and an exact Held–Karp solver used as a test oracle.
//
// All algorithms work on index sets 0..n-1 with costs given by a Metric
// function, so callers can plug in Euclidean distance, energy-weighted
// distance, or the paper's auxiliary-graph weights without copying
// matrices.
package tsp

import (
	"fmt"
	"sort"
)

// Metric returns the travel cost between items i and j. Implementations
// must be symmetric, non-negative and zero on the diagonal; Christofides
// additionally assumes the triangle inequality.
type Metric func(i, j int) float64

// Tour is a closed tour: the cyclic visiting order of a set of item
// indices. A tour of length 0 or 1 is degenerate but valid (the vehicle
// never moves, or visits one site and returns).
type Tour struct {
	Order []int
}

// Len returns the number of visited items.
func (t Tour) Len() int { return len(t.Order) }

// Cost returns the total cycle cost of the tour under m.
func (t Tour) Cost(m Metric) float64 {
	n := len(t.Order)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += m(t.Order[i], t.Order[(i+1)%n])
	}
	return sum
}

// Contains reports whether item v appears in the tour.
func (t Tour) Contains(v int) bool {
	for _, x := range t.Order {
		if x == v {
			return true
		}
	}
	return false
}

// IndexOf returns the position of item v in the order, or -1.
func (t Tour) IndexOf(v int) int {
	for i, x := range t.Order {
		if x == v {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the tour.
func (t Tour) Clone() Tour {
	return Tour{Order: append([]int(nil), t.Order...)}
}

// RotateTo rotates the order in place so that item v comes first. It
// panics if v is not in the tour: tours in this library always include the
// depot, so a missing anchor is a programming error.
func (t *Tour) RotateTo(v int) {
	i := t.IndexOf(v)
	if i < 0 {
		panic(fmt.Sprintf("tsp: item %d not in tour", v))
	}
	if i == 0 {
		return
	}
	rotated := append(append([]int(nil), t.Order[i:]...), t.Order[:i]...)
	copy(t.Order, rotated)
}

// Validate checks that the tour visits each of the given items exactly once
// and nothing else.
func (t Tour) Validate(items []int) error {
	if len(t.Order) != len(items) {
		return fmt.Errorf("tsp: tour has %d items, want %d", len(t.Order), len(items))
	}
	want := append([]int(nil), items...)
	got := append([]int(nil), t.Order...)
	sort.Ints(want)
	sort.Ints(got)
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("tsp: tour items differ from expected at sorted position %d: %d vs %d", i, got[i], want[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			return fmt.Errorf("tsp: duplicate item %d in tour", got[i])
		}
	}
	return nil
}
