package tsp

import (
	"maps"
	"math"
	"math/rand"
	"slices"
	"testing"

	"uavdc/internal/geom"
)

func euclid(pts []geom.Point) Metric {
	return func(i, j int) float64 { return pts[i].Dist(pts[j]) }
}

func randPts(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func allItems(n int) []int {
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	return items
}

func TestTourCost(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(3, 4)}
	m := euclid(pts)
	tour := Tour{Order: []int{0, 1, 2}}
	if c := tour.Cost(m); math.Abs(c-12) > 1e-12 {
		t.Errorf("Cost = %v, want 12", c)
	}
	if c := (Tour{Order: []int{0}}).Cost(m); c != 0 {
		t.Errorf("singleton cost = %v", c)
	}
	if c := (Tour{}).Cost(m); c != 0 {
		t.Errorf("empty cost = %v", c)
	}
	if c := (Tour{Order: []int{0, 2}}).Cost(m); math.Abs(c-10) > 1e-12 {
		t.Errorf("pair cost = %v, want 10 (there and back)", c)
	}
}

func TestTourHelpers(t *testing.T) {
	tour := Tour{Order: []int{5, 2, 9}}
	if !tour.Contains(2) || tour.Contains(3) {
		t.Error("Contains wrong")
	}
	if tour.IndexOf(9) != 2 || tour.IndexOf(1) != -1 {
		t.Error("IndexOf wrong")
	}
	c := tour.Clone()
	c.Order[0] = 7
	if tour.Order[0] != 5 {
		t.Error("Clone aliases storage")
	}
	tour.RotateTo(2)
	if tour.Order[0] != 2 || tour.Order[1] != 9 || tour.Order[2] != 5 {
		t.Errorf("RotateTo = %v", tour.Order)
	}
	tour.RotateTo(2) // no-op path
	if tour.Order[0] != 2 {
		t.Error("RotateTo self changed order")
	}
}

func TestRotateToMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tour := Tour{Order: []int{1, 2}}
	tour.RotateTo(3)
}

func TestValidate(t *testing.T) {
	tour := Tour{Order: []int{3, 1, 2}}
	if err := tour.Validate([]int{1, 2, 3}); err != nil {
		t.Errorf("valid tour rejected: %v", err)
	}
	if err := tour.Validate([]int{1, 2}); err == nil {
		t.Error("wrong cardinality accepted")
	}
	if err := tour.Validate([]int{1, 2, 4}); err == nil {
		t.Error("wrong items accepted")
	}
	if err := (Tour{Order: []int{1, 1, 2}}).Validate([]int{1, 1, 2}); err == nil {
		t.Error("duplicates accepted")
	}
}

func TestChristofidesSmallSizes(t *testing.T) {
	pts := randPts(5, 1)
	m := euclid(pts)
	for k := 0; k <= 2; k++ {
		tour, err := Christofides(allItems(k), m)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if tour.Len() != k {
			t.Errorf("k=%d: len %d", k, tour.Len())
		}
	}
}

func TestChristofidesDuplicateItems(t *testing.T) {
	pts := randPts(5, 1)
	if _, err := Christofides([]int{0, 1, 1}, euclid(pts)); err == nil {
		t.Error("duplicate items accepted")
	}
}

func TestChristofidesVsOptimal(t *testing.T) {
	for _, n := range []int{4, 6, 8, 10, 12} {
		for seed := int64(0); seed < 6; seed++ {
			pts := randPts(n, seed*17+int64(n))
			m := euclid(pts)
			items := allItems(n)
			tour, err := Christofides(items, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := tour.Validate(items); err != nil {
				t.Fatal(err)
			}
			_, opt, err := ExactHeldKarp(items, m)
			if err != nil {
				t.Fatal(err)
			}
			got := tour.Cost(m)
			if got < opt-1e-6 {
				t.Fatalf("n=%d seed=%d: christofides %v beat optimum %v", n, seed, got, opt)
			}
			if got > 1.5*opt+1e-6 {
				t.Errorf("n=%d seed=%d: christofides %v exceeds 1.5×opt %v", n, seed, got, 1.5*opt)
			}
		}
	}
}

func TestChristofidesBoundsLargerInstances(t *testing.T) {
	// No exact oracle at n=80; sandwich between the MST lower bound and
	// 2× MST (the double-tree bound that Christofides always beats).
	for seed := int64(0); seed < 4; seed++ {
		pts := randPts(80, seed)
		m := euclid(pts)
		items := allItems(80)
		tour, err := Christofides(items, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := tour.Validate(items); err != nil {
			t.Fatal(err)
		}
		mst, err := MSTLowerBound(items, m)
		if err != nil {
			t.Fatal(err)
		}
		c := tour.Cost(m)
		if c < mst-1e-6 {
			t.Errorf("tour %v below MST bound %v", c, mst)
		}
		if c > 2*mst+1e-6 {
			t.Errorf("tour %v above double-tree bound %v", c, 2*mst)
		}
	}
}

func TestNearestNeighborAndInsertion(t *testing.T) {
	pts := randPts(30, 3)
	m := euclid(pts)
	items := allItems(30)
	nn := NearestNeighbor(items, m)
	if err := nn.Validate(items); err != nil {
		t.Fatal(err)
	}
	ci := CheapestInsertion(items, m)
	if err := ci.Validate(items); err != nil {
		t.Fatal(err)
	}
	mst, _ := MSTLowerBound(items, m)
	if nn.Cost(m) < mst || ci.Cost(m) < mst {
		t.Error("construction beat the MST lower bound — cost accounting broken")
	}
	if NearestNeighbor(nil, m).Len() != 0 || CheapestInsertion(nil, m).Len() != 0 {
		t.Error("empty construction should be empty")
	}
}

func TestBestInsertionAndInsertConsistent(t *testing.T) {
	pts := randPts(15, 9)
	m := euclid(pts)
	tour := CheapestInsertion(allItems(10), m)
	base := tour.Cost(m)
	for v := 10; v < 15; v++ {
		pos, delta := BestInsertion(tour, v, m)
		grown := Insert(tour, v, pos)
		if math.Abs(grown.Cost(m)-(base+delta)) > 1e-9 {
			t.Fatalf("insert %d: predicted %v, actual %v", v, base+delta, grown.Cost(m))
		}
		// The predicted delta must be minimal over all positions.
		for p := 0; p <= tour.Len(); p++ {
			alt := Insert(tour, v, p)
			if alt.Cost(m) < base+delta-1e-9 {
				t.Fatalf("position %d better than BestInsertion for item %d", p, v)
			}
		}
	}
}

func TestBestInsertionDegenerate(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	m := euclid(pts)
	pos, delta := BestInsertion(Tour{}, 0, m)
	if pos != 0 || delta != 0 {
		t.Errorf("empty: %d %v", pos, delta)
	}
	pos, delta = BestInsertion(Tour{Order: []int{0}}, 1, m)
	if pos != 1 || math.Abs(delta-10) > 1e-12 {
		t.Errorf("singleton: %d %v", pos, delta)
	}
}

func TestInsertOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Insert(Tour{Order: []int{1}}, 2, 5)
}

func TestRemove(t *testing.T) {
	pts := randPts(10, 4)
	m := euclid(pts)
	tour := CheapestInsertion(allItems(10), m)
	base := tour.Cost(m)
	for _, v := range []int{0, 4, 9} {
		smaller, delta := Remove(tour, v, m)
		if smaller.Contains(v) {
			t.Fatalf("item %d still present", v)
		}
		if math.Abs(smaller.Cost(m)-(base-delta)) > 1e-9 {
			t.Fatalf("remove %d: predicted %v, actual %v", v, base-delta, smaller.Cost(m))
		}
	}
	same, delta := Remove(tour, 99, m)
	if delta != 0 || same.Len() != tour.Len() {
		t.Error("removing absent item should be a no-op")
	}
	pair := Tour{Order: []int{0, 1}}
	single, delta := Remove(pair, 1, m)
	if single.Len() != 1 || math.Abs(delta-2*m(0, 1)) > 1e-12 {
		t.Errorf("pair removal: len=%d delta=%v", single.Len(), delta)
	}
}

func TestTwoOptImproves(t *testing.T) {
	pts := randPts(40, 8)
	m := euclid(pts)
	items := allItems(40)
	tour := NearestNeighbor(items, m)
	before := tour.Cost(m)
	saved := TwoOpt(&tour, m, 0)
	after := tour.Cost(m)
	if err := tour.Validate(items); err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-saved-after) > 1e-6 {
		t.Errorf("claimed saving %v, actual %v", saved, before-after)
	}
	if after > before+1e-9 {
		t.Error("2-opt made tour worse")
	}
	// After 2-opt, no improving 2-exchange may remain.
	if extra := TwoOpt(&tour, m, 0); extra > 1e-9 {
		t.Errorf("second 2-opt still saved %v", extra)
	}
}

func TestOrOptImproves(t *testing.T) {
	pts := randPts(30, 12)
	m := euclid(pts)
	items := allItems(30)
	tour := NearestNeighbor(items, m)
	before := tour.Cost(m)
	saved := OrOpt(&tour, m, 0)
	after := tour.Cost(m)
	if err := tour.Validate(items); err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-saved-after) > 1e-6 {
		t.Errorf("claimed saving %v, actual %v", saved, before-after)
	}
}

func TestImproveCombined(t *testing.T) {
	pts := randPts(50, 20)
	m := euclid(pts)
	items := allItems(50)
	tour := NearestNeighbor(items, m)
	before := tour.Cost(m)
	Improve(&tour, m)
	if err := tour.Validate(items); err != nil {
		t.Fatal(err)
	}
	if tour.Cost(m) > before+1e-9 {
		t.Error("Improve made tour worse")
	}
	tiny := Tour{Order: []int{0, 1, 2}}
	if Improve(&tiny, m) != 0 {
		t.Error("Improve on triangle should be a no-op")
	}
}

func TestHeldKarpKnown(t *testing.T) {
	// Unit square: optimal tour is the perimeter, cost 4.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	m := euclid(pts)
	tour, c, err := ExactHeldKarp(allItems(4), m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-4) > 1e-9 {
		t.Errorf("optimal cost = %v, want 4", c)
	}
	if math.Abs(tour.Cost(m)-c) > 1e-9 {
		t.Error("reconstructed tour cost disagrees with DP value")
	}
}

func TestHeldKarpDegenerate(t *testing.T) {
	pts := randPts(3, 2)
	m := euclid(pts)
	if _, c, err := ExactHeldKarp(nil, m); err != nil || c != 0 {
		t.Error("empty should be free")
	}
	if _, c, err := ExactHeldKarp([]int{1}, m); err != nil || c != 0 {
		t.Error("singleton should be free")
	}
	if _, c, err := ExactHeldKarp([]int{0, 2}, m); err != nil || math.Abs(c-2*m(0, 2)) > 1e-12 {
		t.Error("pair should be the round trip")
	}
	if _, _, err := ExactHeldKarp(allItems(HeldKarpMax+1), m); err == nil {
		t.Error("oversized input accepted")
	}
}

func TestHeldKarpIsLowerBoundForHeuristics(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pts := randPts(9, 100+seed)
		m := euclid(pts)
		items := allItems(9)
		_, opt, err := ExactHeldKarp(items, m)
		if err != nil {
			t.Fatal(err)
		}
		heuristics := map[string]Tour{
			"nn": NearestNeighbor(items, m),
			"ci": CheapestInsertion(items, m),
		}
		for _, name := range slices.Sorted(maps.Keys(heuristics)) {
			tour := heuristics[name]
			if tour.Cost(m) < opt-1e-6 {
				t.Errorf("seed %d: %s beat the optimum: %v < %v", seed, name, tour.Cost(m), opt)
			}
		}
	}
}

func BenchmarkChristofides100(b *testing.B) {
	pts := randPts(100, 5)
	m := euclid(pts)
	items := allItems(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Christofides(items, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoOpt100(b *testing.B) {
	pts := randPts(100, 5)
	m := euclid(pts)
	items := allItems(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tour := NearestNeighbor(items, m)
		TwoOpt(&tour, m, 0)
	}
}
