// Package unionfind implements a disjoint-set forest with union by rank and
// path compression, used by Kruskal's MST construction in internal/graph.
package unionfind

// UF is a disjoint-set forest over elements 0..n-1.
type UF struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	uf := &UF{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		x, u.parent[x] = int(u.parent[x]), root
	}
	return int(root)
}

// Union merges the sets containing a and b and reports whether a merge
// happened (false when they were already in the same set).
func (u *UF) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Connected reports whether a and b share a set.
func (u *UF) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }
