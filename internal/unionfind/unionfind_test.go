package unionfind

import (
	"math/rand"
	"testing"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Sets() != 5 || u.Len() != 5 {
		t.Fatalf("Sets=%d Len=%d", u.Sets(), u.Len())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d", i, u.Find(i))
		}
	}
	if u.Connected(0, 1) {
		t.Error("singletons should not be connected")
	}
}

func TestUnionFind(t *testing.T) {
	u := New(10)
	if !u.Union(0, 1) {
		t.Error("first union should merge")
	}
	if u.Union(0, 1) {
		t.Error("repeated union should not merge")
	}
	u.Union(1, 2)
	u.Union(3, 4)
	if !u.Connected(0, 2) {
		t.Error("0 and 2 should be connected transitively")
	}
	if u.Connected(0, 3) {
		t.Error("0 and 3 should not be connected")
	}
	if u.Sets() != 10-3 {
		t.Errorf("Sets = %d, want 7", u.Sets())
	}
	u.Union(2, 4)
	if !u.Connected(0, 3) {
		t.Error("after bridge union, 0 and 3 connected")
	}
}

func TestChainCompression(t *testing.T) {
	const n = 1000
	u := New(n)
	for i := 1; i < n; i++ {
		u.Union(i-1, i)
	}
	if u.Sets() != 1 {
		t.Fatalf("Sets = %d", u.Sets())
	}
	root := u.Find(0)
	for i := 0; i < n; i++ {
		if u.Find(i) != root {
			t.Fatalf("element %d has root %d, want %d", i, u.Find(i), root)
		}
	}
}

// TestAgainstNaive cross-checks random unions with a naive labelling.
func TestAgainstNaive(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(5))
	u := New(n)
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for step := 0; step < 500; step++ {
		a, b := rng.Intn(n), rng.Intn(n)
		merged := u.Union(a, b)
		if merged != (label[a] != label[b]) {
			t.Fatalf("step %d: merged=%v labels %d,%d", step, merged, label[a], label[b])
		}
		if merged {
			relabel(label[a], label[b])
		}
		x, y := rng.Intn(n), rng.Intn(n)
		if u.Connected(x, y) != (label[x] == label[y]) {
			t.Fatalf("step %d: connectivity mismatch for %d,%d", step, x, y)
		}
	}
}
