// Package units gives the planner's physical quantities defined types.
// Every quantity in the paper's model — hover power η_h, travel power
// η_t (J/s), cruising speed v (m/s), battery capacity E (J), data
// volumes D_v and bandwidth B — is a float64 whose dimension used to
// live only in a doc comment. A defined float64 type changes no
// arithmetic (same representation, same operations, bit-identical
// results) but makes a J-vs-m or J-vs-J/s mix-up a compile error, and
// lets the unitsafety analyzer (internal/lint) flag the casts that
// would launder a dimension through a conversion.
//
// The canonical scales follow the paper's experimental settings:
// Joules, Watts (J/s), Seconds, Meters, MetersPerSecond, and — for data
// — megabytes. Bits and BitsPerSecond name the information dimension,
// not the prefix: a Bits value of 1 is one MB, matching the paper's D_v
// and B = 150 MB/s. The type tracks what a value *is*; the scale is a
// repo-wide convention.
//
// Crossing dimensions goes through the closed helper set below (Energy,
// TravelTime, Transfer, ...), each of which computes exactly the
// expression its physics formula writes. Same-dimension arithmetic
// (sums, differences, comparisons, untyped-constant scaling like
// `e * 0.5`) works directly on the typed values. Leaving the typed
// world — instrumentation, JSON encoding, rendering — is an explicit
// .F() call, the one sanctioned escape; a plain float64(x) conversion
// of a unit value outside this package is a unitsafety diagnostic.
package units

import "math"

// Joules is an amount of energy (battery capacity E, hover/travel/climb
// energy, edge weights of the Eq. 9 auxiliary graph).
type Joules float64

// Watts is a power draw in J/s (η_h, η_t, climb power).
type Watts float64

// Seconds is a duration (sojourn times t(s_j), travel times).
type Seconds float64

// Meters is a ground or slant distance (δ, R0, altitude H, tour legs).
type Meters float64

// MetersPerSecond is a speed (cruising speed v, climb rate).
type MetersPerSecond float64

// Bits is an amount of data, in the repo's canonical MB scale (the
// paper's per-sensor volume D_v and the award P(s_j)).
type Bits float64

// BitsPerSecond is a data rate, in MB/s (the paper's bandwidth B).
type BitsPerSecond float64

// F unwraps the quantity to a plain float64 at a typed-world boundary.
func (q Joules) F() float64 { return float64(q) }

// F unwraps the quantity to a plain float64 at a typed-world boundary.
func (q Watts) F() float64 { return float64(q) }

// F unwraps the quantity to a plain float64 at a typed-world boundary.
func (q Seconds) F() float64 { return float64(q) }

// F unwraps the quantity to a plain float64 at a typed-world boundary.
func (q Meters) F() float64 { return float64(q) }

// F unwraps the quantity to a plain float64 at a typed-world boundary.
func (q MetersPerSecond) F() float64 { return float64(q) }

// F unwraps the quantity to a plain float64 at a typed-world boundary.
func (q Bits) F() float64 { return float64(q) }

// F unwraps the quantity to a plain float64 at a typed-world boundary.
func (q BitsPerSecond) F() float64 { return float64(q) }

// Energy is power sustained over a duration: p·t, in J.
func Energy(p Watts, t Seconds) Joules { return Joules(float64(p) * float64(t)) }

// Duration is how long an energy store sustains a power draw: e/p, in s.
func Duration(e Joules, p Watts) Seconds { return Seconds(float64(e) / float64(p)) }

// TravelTime is the time to cover a distance at a speed: d/v, in s.
func TravelTime(d Meters, v MetersPerSecond) Seconds { return Seconds(float64(d) / float64(v)) }

// Distance is the ground covered at a speed over a duration: v·t, in m.
func Distance(v MetersPerSecond, t Seconds) Meters { return Meters(float64(v) * float64(t)) }

// Transfer is the data moved at a rate over a duration: r·t, in MB.
func Transfer(r BitsPerSecond, t Seconds) Bits { return Bits(float64(r) * float64(t)) }

// TransferTime is the time to move a volume at a rate: b/r, in s.
func TransferTime(b Bits, r BitsPerSecond) Seconds { return Seconds(float64(b) / float64(r)) }

// Scale multiplies a quantity by a dimensionless factor, preserving its
// unit (noise surcharges, safety margins, the ½ of Eq. 9).
func Scale[T ~float64](q T, k float64) T { return T(float64(q) * k) }

// Ratio is the dimensionless quotient of two like quantities.
func Ratio[T ~float64](a, b T) float64 { return float64(a) / float64(b) }

// Min returns the smaller of two like quantities, with math.Min's
// NaN/signed-zero semantics.
func Min[T ~float64](a, b T) T { return T(math.Min(float64(a), float64(b))) }

// Max returns the larger of two like quantities, with math.Max's
// NaN/signed-zero semantics.
func Max[T ~float64](a, b T) T { return T(math.Max(float64(a), float64(b))) }

// Abs returns the magnitude of a quantity.
func Abs[T ~float64](q T) T { return T(math.Abs(float64(q))) }

// Hypot is the Euclidean hypotenuse of two distances (slant paths),
// with math.Hypot's overflow-safe semantics.
func Hypot(x, y Meters) Meters { return Meters(math.Hypot(float64(x), float64(y))) }
