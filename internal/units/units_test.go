package units

import (
	"math"
	"testing"
)

// TestCrossingsMatchRawArithmetic pins every dimension-crossing helper
// to the exact float64 expression its formula writes — the bit-identity
// contract the typed refactor rests on.
func TestCrossingsMatchRawArithmetic(t *testing.T) {
	// Deliberately awkward values: results are inexact, so any
	// reassociation inside a helper would change the bits.
	p, tt, d, v, r, b, e := 150.3, 7.77, 123.45, 9.9, 151.5, 1007.3, 2.9e5
	checks := []struct {
		name      string
		got, want float64
	}{
		{"Energy", Energy(Watts(p), Seconds(tt)).F(), p * tt},
		{"Duration", Duration(Joules(e), Watts(p)).F(), e / p},
		{"TravelTime", TravelTime(Meters(d), MetersPerSecond(v)).F(), d / v},
		{"Distance", Distance(MetersPerSecond(v), Seconds(tt)).F(), v * tt},
		{"Transfer", Transfer(BitsPerSecond(r), Seconds(tt)).F(), r * tt},
		{"TransferTime", TransferTime(Bits(b), BitsPerSecond(r)).F(), b / r},
		{"Scale", Scale(Joules(e), 0.37).F(), e * 0.37},
		{"Ratio", Ratio(Joules(b), Joules(e)), b / e},
		{"Hypot", Hypot(Meters(d), Meters(v)).F(), math.Hypot(d, v)},
	}
	for _, c := range checks {
		if math.Float64bits(c.got) != math.Float64bits(c.want) {
			t.Errorf("%s = %v (bits %x), want %v (bits %x)",
				c.name, c.got, math.Float64bits(c.got), c.want, math.Float64bits(c.want))
		}
	}
}

// TestMinMaxAbsDelegateToMath locks the NaN and signed-zero semantics to
// the math package's, since the call sites they replaced used math.Min,
// math.Max, and math.Abs.
func TestMinMaxAbsDelegateToMath(t *testing.T) {
	nan, negZero := math.NaN(), math.Copysign(0, -1)
	pairs := [][2]float64{
		{1, 2}, {2, 1}, {nan, 1}, {1, nan}, {negZero, 0}, {0, negZero}, {-3.5, -3.5},
	}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if got, want := Min(Bits(a), Bits(b)).F(), math.Min(a, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Min(%v, %v) = %v, want %v", a, b, got, want)
		}
		if got, want := Max(Bits(a), Bits(b)).F(), math.Max(a, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Max(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
	for _, x := range []float64{1.5, -1.5, 0, negZero, nan, math.Inf(-1)} {
		if got, want := Abs(Joules(x)).F(), math.Abs(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Abs(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestFRoundTrips: wrapping and unwrapping is the identity on bits,
// including for the values float64 treats specially.
func TestFRoundTrips(t *testing.T) {
	for _, x := range []float64{0, math.Copysign(0, -1), 1.25, -3e5, math.Inf(1), math.NaN()} {
		if got := Joules(x).F(); math.Float64bits(got) != math.Float64bits(x) {
			t.Errorf("Joules(%v).F() = %v", x, got)
		}
		if got := BitsPerSecond(x).F(); math.Float64bits(got) != math.Float64bits(x) {
			t.Errorf("BitsPerSecond(%v).F() = %v", x, got)
		}
	}
}
