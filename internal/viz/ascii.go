package viz

import (
	"fmt"
	"io"
	"strings"

	"uavdc/internal/core"
	"uavdc/internal/sensornet"
)

// WriteASCII renders the field and a plan as a terminal map — the
// zero-dependency preview for CLI sessions. Glyphs: `.` sensor, `:` sensor
// with most of its data still on board, `o` hovering stop, `D` depot,
// digits 1–9 label every stop in visiting order (mod 10, `0` for the
// tenth). Stops overwrite sensors; the depot overwrites everything.
func WriteASCII(w io.Writer, net *sensornet.Network, plan *core.Plan, cols int) error {
	if cols <= 0 {
		cols = 60
	}
	rw, rh := net.Region.Width(), net.Region.Height()
	if rw <= 0 || rh <= 0 {
		return fmt.Errorf("viz: degenerate region")
	}
	// Terminal cells are ~2× taller than wide; halve the row count to
	// keep the aspect ratio roughly square.
	rows := int(float64(cols) * rh / rw / 2)
	if rows < 2 {
		rows = 2
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	put := func(x, y float64, ch byte) {
		c := int((x - net.Region.Min.X) / rw * float64(cols))
		r := int((y - net.Region.Min.Y) / rh * float64(rows))
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		if c < 0 || r < 0 {
			return
		}
		grid[rows-1-r][c] = ch // invert y: north up
	}

	collected := plan.CollectedBySensor(len(net.Sensors))
	for v, s := range net.Sensors {
		ch := byte('.')
		if s.Data > 0 && collected[v] < s.Data/2 {
			ch = ':'
		}
		put(s.Pos.X, s.Pos.Y, ch)
	}
	for i := range plan.Stops {
		put(plan.Stops[i].Pos.X, plan.Stops[i].Pos.Y, byte('0'+(i+1)%10))
	}
	put(net.Depot.X, net.Depot.Y, 'D')

	border := "+" + strings.Repeat("-", cols) + "+\n"
	if _, err := io.WriteString(w, border); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", row); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, border); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "D depot · digits stops in order · ':' sensor still loaded · '.' drained/covered\n")
	return err
}
