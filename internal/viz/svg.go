// Package viz renders missions as standalone SVG documents: the monitoring
// region, the sensor field (dot area ∝ stored volume), the depot, and each
// plan's tour polyline with hover-coverage circles at the stops. Pure
// stdlib; the output opens in any browser.
package viz

import (
	"fmt"
	"io"
	"math"

	"uavdc/internal/core"
	"uavdc/internal/errw"
	"uavdc/internal/sensornet"
)

// palette cycles across tours when rendering fleets.
var palette = []string{"#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"}

// Options tunes the rendering.
type Options struct {
	// WidthPx is the image width in pixels (height follows the region's
	// aspect ratio); ≤ 0 means 800.
	WidthPx int
	// CoverRadius draws a coverage circle of this many metres at every
	// stop; 0 disables the circles.
	CoverRadius float64
	// Title is drawn in the top-left corner.
	Title string
}

// WriteSVG renders the network and the given plans (one colour each).
func WriteSVG(w io.Writer, net *sensornet.Network, plans []*core.Plan, opts Options) error {
	width := opts.WidthPx
	if width <= 0 {
		width = 800
	}
	rw, rh := net.Region.Width(), net.Region.Height()
	if rw <= 0 || rh <= 0 {
		return fmt.Errorf("viz: degenerate region")
	}
	scale := float64(width) / rw
	height := int(math.Ceil(rh * scale))
	// SVG y grows downward; flip so the region's y grows upward.
	x := func(v float64) float64 { return (v - net.Region.Min.X) * scale }
	y := func(v float64) float64 { return float64(height) - (v-net.Region.Min.Y)*scale }

	var maxData float64
	for _, s := range net.Sensors {
		if s.Data > maxData {
			maxData = s.Data
		}
	}
	if maxData == 0 {
		maxData = 1
	}

	// Error-sticky writer: the first write failure wins and later calls
	// become no-ops, so the happy path stays linear.
	ew := errw.New(w)
	ew.Printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	ew.Printf(`<rect width="%d" height="%d" fill="#fbfbf8" stroke="#888"/>`+"\n", width, height)

	// Sensors.
	ew.Printf("<g fill=\"#555\" fill-opacity=\"0.75\">\n")
	for _, s := range net.Sensors {
		r := 1.5 + 4*math.Sqrt(s.Data/maxData)
		ew.Printf(`<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x(s.Pos.X), y(s.Pos.Y), r)
	}
	ew.Printf("</g>\n")

	// Tours.
	for pi, plan := range plans {
		color := palette[pi%len(palette)]
		if len(plan.Stops) > 0 {
			ew.Printf(`<polyline fill="none" stroke="%s" stroke-width="2" stroke-opacity="0.9" points="`, color)
			ew.Printf("%.1f,%.1f ", x(plan.Depot.X), y(plan.Depot.Y))
			for i := range plan.Stops {
				ew.Printf("%.1f,%.1f ", x(plan.Stops[i].Pos.X), y(plan.Stops[i].Pos.Y))
			}
			ew.Printf("%.1f,%.1f", x(plan.Depot.X), y(plan.Depot.Y))
			ew.Printf("\"/>\n")
		}
		if opts.CoverRadius > 0 {
			ew.Printf(`<g fill="%s" fill-opacity="0.08" stroke="%s" stroke-opacity="0.35">`+"\n", color, color)
			for i := range plan.Stops {
				ew.Printf(`<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n",
					x(plan.Stops[i].Pos.X), y(plan.Stops[i].Pos.Y), opts.CoverRadius*scale)
			}
			ew.Printf("</g>\n")
		}
		// Stop markers.
		ew.Printf(`<g fill="%s">`+"\n", color)
		for i := range plan.Stops {
			ew.Printf(`<circle cx="%.1f" cy="%.1f" r="3"/>`+"\n", x(plan.Stops[i].Pos.X), y(plan.Stops[i].Pos.Y))
		}
		ew.Printf("</g>\n")
	}

	// Depot.
	ew.Printf(`<rect x="%.1f" y="%.1f" width="10" height="10" fill="#000"/>`+"\n",
		x(net.Depot.X)-5, y(net.Depot.Y)-5)

	if opts.Title != "" {
		ew.Printf(`<text x="10" y="22" font-family="sans-serif" font-size="16">%s</text>`+"\n", xmlEscape(opts.Title))
	}
	ew.Printf("</svg>\n")
	return ew.Err()
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
