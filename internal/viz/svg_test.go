package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
)

func renderSample(t *testing.T, opts Options) string {
	t.Helper()
	p := sensornet.DefaultGenParams()
	p.NumSensors = 30
	p.Side = 300
	net, err := sensornet.Generate(p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	in := &core.Instance{Net: net, Model: energy.Default().WithCapacity(1e4), Delta: 25, K: 2}
	plan, err := (&core.Algorithm3{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSVG(&sb, net, []*core.Plan{plan}, opts); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestWriteSVGWellFormed(t *testing.T) {
	out := renderSample(t, Options{CoverRadius: 50, Title: "tour <1> & \"two\""})
	// Must be valid XML end to end.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, out)
		}
	}
	for _, want := range []string{"<svg", "polyline", "circle", "</svg>", "&lt;1&gt; &amp; &quot;two&quot;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestWriteSVGDefaults(t *testing.T) {
	out := renderSample(t, Options{})
	if !strings.Contains(out, `width="800"`) {
		t.Error("default width not applied")
	}
	if strings.Contains(out, "fill-opacity=\"0.08\"") {
		t.Error("coverage circles drawn without CoverRadius")
	}
}

func TestWriteSVGEmptyPlanAndNetwork(t *testing.T) {
	net := &sensornet.Network{
		Region:    geom.Square(100),
		Depot:     geom.Pt(50, 50),
		Bandwidth: 1,
		CommRange: 10,
	}
	var sb strings.Builder
	if err := WriteSVG(&sb, net, []*core.Plan{{Depot: net.Depot}}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("no svg emitted")
	}
	bad := *net
	bad.Region = geom.Square(0)
	if err := WriteSVG(&sb, &bad, nil, Options{}); err == nil {
		t.Error("degenerate region accepted")
	}
}

func TestWriteSVGMultipleTourColours(t *testing.T) {
	p := sensornet.DefaultGenParams()
	p.NumSensors = 30
	p.Side = 300
	net, _ := sensornet.Generate(p, rng.New(2))
	in := &core.Instance{Net: net, Model: energy.Default().WithCapacity(8e3), Delta: 25, K: 1}
	p1, err := (&core.Algorithm2{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (&core.BenchmarkPlanner{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSVG(&sb, net, []*core.Plan{p1, p2}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), palette[0]) || !strings.Contains(sb.String(), palette[1]) {
		t.Error("two tours should use two palette colours")
	}
}

func TestWriteASCII(t *testing.T) {
	p := sensornet.DefaultGenParams()
	p.NumSensors = 25
	p.Side = 300
	net, _ := sensornet.Generate(p, rng.New(4))
	in := &core.Instance{Net: net, Model: energy.Default().WithCapacity(1e4), Delta: 25, K: 1}
	plan, err := (&core.Algorithm2{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteASCII(&sb, net, plan, 50); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "D") {
		t.Error("depot missing")
	}
	if !strings.Contains(out, "1") {
		t.Error("first stop missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// border + rows + border + legend
	if len(lines) < 5 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	for _, l := range lines[:len(lines)-1] {
		if len(l) != 52 { // '|' + 50 + '|' or border width
			t.Fatalf("ragged map line %q (len %d)", l, len(l))
		}
	}
	// Degenerate region fails cleanly.
	bad := *net
	bad.Region = geom.Square(0)
	if err := WriteASCII(&sb, &bad, plan, 50); err == nil {
		t.Error("degenerate region accepted")
	}
	// Default width path.
	if err := WriteASCII(&sb, net, &core.Plan{Depot: net.Depot}, 0); err != nil {
		t.Error(err)
	}
}
