// Package wire is the canonical registry of uavdc's versioned
// wire-format tags. Every serialized artifact the repo emits — serve
// request/response bodies, the op-log and trace JSONL streams, canonical
// cache-key encodings, bench panels, the lint report — is stamped with a
// "uavdc-<name>/<version>" tag declared here and nowhere else.
//
// The registry is the single source of truth three ways:
//
//   - Producing and consuming packages reference the exported constants
//     (trace.Schema = wire.Trace, ...) instead of spelling out literals,
//     so an encoder and its decoder cannot drift apart.
//   - The wirefmt analyzer (internal/lint) constant-folds every
//     "uavdc-*/N" string literal in non-test code against Current, so an
//     unregistered schema name or a stale version is a lint failure.
//   - A test cross-checks the registry against the "Wire-format
//     registry" table in EXPERIMENTS.md, so documentation and
//     enforcement cannot drift apart (mirroring internal/obs's
//     canonical-name registry).
//
// Bumping a schema version is therefore a three-line change — the
// constant, the EXPERIMENTS.md row, and the format change itself — and
// the lint suite catches any encoder or decoder left behind.
package wire

import (
	"fmt"
	"strconv"
	"strings"
)

// The current tag of every registered wire format, one constant per
// schema. Bump a version here (and in the EXPERIMENTS.md registry
// table) when the format changes meaning.
const (
	// Bench tags BENCH_*.json perf panels (internal/experiments).
	Bench = "uavdc-bench/1"
	// Canon tags the canonical instance-key encoding (internal/canon).
	Canon = "uavdc-canon/1"
	// Health tags the /healthz JSON body (internal/serve).
	Health = "uavdc-health/1"
	// Lint tags uavlint's -json report (internal/lint).
	Lint = "uavdc-lint/2"
	// Mission tags the campaign-knob cache-key extension
	// (internal/mission).
	Mission = "uavdc-mission/1"
	// Multi tags the fleet-knob cache-key extension (internal/multi).
	Multi = "uavdc-multi/1"
	// Oplog tags the request op-log JSONL stream (internal/oplog).
	Oplog = "uavdc-oplog/1"
	// Runtime tags the /debug/runtime JSON body (internal/serve).
	Runtime = "uavdc-runtime/1"
	// Serve tags plan request and response bodies (internal/serve).
	Serve = "uavdc-serve/1"
	// SimulateAdaptive tags the adaptive-executor cache-key extension
	// (internal/simulate).
	SimulateAdaptive = "uavdc-simulate-adaptive/1"
	// Trace tags the flight-recorder JSONL stream (internal/trace).
	Trace = "uavdc-trace/1"
	// Window tags the /debug/window JSON body (internal/serve).
	Window = "uavdc-window/1"
)

// current maps each registered schema name to its current version; it is
// derived from the constants above so the two cannot disagree.
var current = map[string]int{}

func init() {
	for _, tag := range []string{
		Bench, Canon, Health, Lint, Mission, Multi,
		Oplog, Runtime, Serve, SimulateAdaptive, Trace, Window,
	} {
		name, version, err := ParseTag(tag)
		if err != nil {
			panic(fmt.Sprintf("wire: bad registry constant %q: %v", tag, err))
		}
		if _, dup := current[name]; dup {
			panic(fmt.Sprintf("wire: schema %q registered twice", name))
		}
		current[name] = version
	}
}

// Current returns the registered current version of a schema name (the
// part between "uavdc-" and the "/"), and whether the name is
// registered at all.
func Current(name string) (version int, ok bool) {
	version, ok = current[name]
	return version, ok
}

// Canonical returns a copy of the registry, schema name → current
// version, for cross-checking tests and the wirefmt analyzer.
func Canonical() map[string]int {
	out := make(map[string]int, len(current))
	for name, version := range current {
		out[name] = version
	}
	return out
}

// ParseTag splits a "uavdc-<name>/<version>" tag into its schema name
// and version. The name grammar matches the wirefmt analyzer: lowercase
// letters, digits, and interior dashes, starting with a letter.
func ParseTag(tag string) (name string, version int, err error) {
	rest, ok := strings.CutPrefix(tag, "uavdc-")
	if !ok {
		return "", 0, fmt.Errorf("wire: tag %q does not start with %q", tag, "uavdc-")
	}
	name, ver, ok := strings.Cut(rest, "/")
	if !ok {
		return "", 0, fmt.Errorf("wire: tag %q has no /version suffix", tag)
	}
	if !validName(name) {
		return "", 0, fmt.Errorf("wire: tag %q has invalid schema name %q", tag, name)
	}
	version, err = strconv.Atoi(ver)
	if err != nil || version < 1 {
		return "", 0, fmt.Errorf("wire: tag %q has invalid version %q", tag, ver)
	}
	return name, version, nil
}

// Tag assembles the "uavdc-<name>/<version>" form.
func Tag(name string, version int) string {
	return fmt.Sprintf("uavdc-%s/%d", name, version)
}

// validName reports whether name is a well-formed schema name:
// lowercase letters, digits, and dashes, starting with a letter and not
// ending with a dash.
func validName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' || name[len(name)-1] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}
