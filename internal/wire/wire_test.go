package wire

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestParseTag(t *testing.T) {
	cases := []struct {
		tag     string
		name    string
		version int
		ok      bool
	}{
		{"uavdc-serve/1", "serve", 1, true},
		{"uavdc-simulate-adaptive/1", "simulate-adaptive", 1, true},
		{"uavdc-lint/2", "lint", 2, true},
		{"uavdc-lint/10", "lint", 10, true},
		{"uavdc-serve/0", "", 0, false},  // versions start at 1
		{"uavdc-serve/-1", "", 0, false}, // negative version
		{"uavdc-serve/x", "", 0, false},  // non-numeric version
		{"uavdc-serve", "", 0, false},    // no version
		{"uavdc-Serve/1", "", 0, false},  // uppercase name
		{"uavdc-9lives/1", "", 0, false}, // leading digit
		{"uavdc-bad-/1", "", 0, false},   // trailing dash
		{"uavdc-/1", "", 0, false},       // empty name
		{"oplog/1", "", 0, false},        // missing uavdc- prefix
		{"", "", 0, false},
	}
	for _, c := range cases {
		name, version, err := ParseTag(c.tag)
		if (err == nil) != c.ok {
			t.Errorf("ParseTag(%q) err = %v; want ok=%v", c.tag, err, c.ok)
			continue
		}
		if c.ok && (name != c.name || version != c.version) {
			t.Errorf("ParseTag(%q) = %q, %d; want %q, %d", c.tag, name, version, c.name, c.version)
		}
	}
}

func TestTagRoundTrip(t *testing.T) {
	reg := Canonical()
	for _, name := range sortedKeys(reg) {
		version := reg[name]
		tag := Tag(name, version)
		gotName, gotVersion, err := ParseTag(tag)
		if err != nil || gotName != name || gotVersion != version {
			t.Errorf("ParseTag(Tag(%q, %d)) = %q, %d, %v", name, version, gotName, gotVersion, err)
		}
	}
}

func TestCurrent(t *testing.T) {
	if v, ok := Current("serve"); !ok || v != 1 {
		t.Errorf("Current(serve) = %d, %v; want 1, true", v, ok)
	}
	if v, ok := Current("lint"); !ok || v != 2 {
		t.Errorf("Current(lint) = %d, %v; want 2, true", v, ok)
	}
	for _, bad := range []string{"bogus", "uavdc-serve", "serve/1", ""} {
		if _, ok := Current(bad); ok {
			t.Errorf("Current(%q) matched; want no match", bad)
		}
	}
}

// TestCanonicalIsACopy locks that mutating the returned map cannot
// corrupt the registry.
func TestCanonicalIsACopy(t *testing.T) {
	Canonical()["serve"] = 99
	if v, _ := Current("serve"); v != 1 {
		t.Fatalf("Current(serve) = %d after mutating Canonical() copy; want 1", v)
	}
}

// experimentsWireTable parses the "Wire-format registry" table in
// EXPERIMENTS.md: rows of the form "| `uavdc-name/N` | ... |" between
// the registry heading and the next heading.
func experimentsWireTable(t *testing.T) map[string]int {
	t.Helper()
	path := filepath.Join("..", "..", "EXPERIMENTS.md")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	row := regexp.MustCompile("^\\| `([^`]+)` \\|")
	tags := map[string]int{}
	in := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			in = strings.Contains(line, "Wire-format registry")
			continue
		}
		if !in {
			continue
		}
		if m := row.FindStringSubmatch(line); m != nil {
			name, version, err := ParseTag(m[1])
			if err != nil {
				t.Errorf("EXPERIMENTS.md wire table row %q: %v", m[1], err)
				continue
			}
			if _, dup := tags[name]; dup {
				t.Errorf("EXPERIMENTS.md wire table lists schema %q twice", name)
			}
			tags[name] = version
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(tags) == 0 {
		t.Fatal("no rows found under the 'Wire-format registry' heading in EXPERIMENTS.md")
	}
	return tags
}

// TestWireRegistryMatchesExperimentsDoc asserts the in-code registry
// and the EXPERIMENTS.md wire-format table are the same set, version
// for version — documentation and enforcement cannot drift apart.
func TestWireRegistryMatchesExperimentsDoc(t *testing.T) {
	doc := experimentsWireTable(t)
	reg := Canonical()
	for _, name := range sortedKeys(reg) {
		version := reg[name]
		got, ok := doc[name]
		if !ok {
			t.Errorf("wire schema %q (v%d) is missing from the EXPERIMENTS.md wire-format table", name, version)
			continue
		}
		if got != version {
			t.Errorf("%q: EXPERIMENTS.md documents version %d, registry says %d", name, got, version)
		}
	}
	for _, name := range sortedKeys(doc) {
		if _, ok := reg[name]; !ok {
			t.Errorf("EXPERIMENTS.md documents wire schema %q, which is not in the wire registry", name)
		}
	}
}

// sortedKeys returns m's keys in sorted order, so table mismatches are
// reported deterministically.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
