package uavdc

import (
	"uavdc/internal/canon"
)

// PlanKey content-addresses a Plan call: two invocations return the same
// key exactly when Plan is guaranteed to return the same Result. The key
// hashes the canonical instance encoding (internal/canon) — field
// geometry, sensor set in order, energy model, discretisation and physics
// knobs, and the planner selection — after resolving every unset default,
// so a request that spells out Algorithm "partial", K 4, and the default
// δ addresses the same cache line as one that elides them. Output-neutral
// options (Parallel, Trace) are excluded; the repo's determinism rails
// prove they never change the plan. cmd/uavserve uses this key for its
// plan cache and in-flight request coalescing.
func PlanKey(sc Scenario, uav UAV, opts Options) (string, error) {
	k, err := planKey(sc, uav, opts)
	if err != nil {
		return "", err
	}
	return k.String(), nil
}

// planKey computes the binary cache key behind PlanKey.
func planKey(sc Scenario, uav UAV, opts Options) (canon.Key, error) {
	if _, err := plannerFor(opts); err != nil {
		return canon.Key{}, err
	}
	in, err := sc.instance(uav, opts)
	if err != nil {
		return canon.Key{}, err
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = AlgorithmPartial
	}
	return in.CanonKey(string(alg), opts.Refine)
}
