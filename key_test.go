package uavdc

import (
	"maps"
	"slices"
	"strings"
	"testing"
)

func TestPlanKeyDeterministic(t *testing.T) {
	sc := RandomScenario(20, 200, 1)
	uav := DefaultUAV()
	a, err := PlanKey(sc, uav, Options{})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	b, err := PlanKey(sc, uav, Options{})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	if a != b {
		t.Fatalf("same call, different keys: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.ToLower(a) != a {
		t.Fatalf("key is not lowercase sha256 hex: %q", a)
	}
}

func TestPlanKeyDefaultElision(t *testing.T) {
	sc := RandomScenario(20, 200, 1)
	uav := DefaultUAV()
	elided, err := PlanKey(sc, uav, Options{})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	spelled, err := PlanKey(sc, uav, Options{
		Algorithm: AlgorithmPartial,
		K:         4,
		DeltaM:    sc.CoverRadiusM / 5,
	})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	if elided != spelled {
		t.Fatal("elided and spelled-out defaults produce different keys")
	}
}

func TestPlanKeySensitivity(t *testing.T) {
	sc := RandomScenario(20, 200, 1)
	uav := DefaultUAV()
	base, err := PlanKey(sc, uav, Options{})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	cases := map[string]func() (string, error){
		"algorithm": func() (string, error) { return PlanKey(sc, uav, Options{Algorithm: AlgorithmGreedy}) },
		"refine":    func() (string, error) { return PlanKey(sc, uav, Options{Refine: true}) },
		"altitude":  func() (string, error) { return PlanKey(sc, uav, Options{AltitudeM: 30}) },
		"shannon":   func() (string, error) { return PlanKey(sc, uav, Options{ShannonRadio: true}) },
		"k":         func() (string, error) { return PlanKey(sc, uav, Options{K: 8}) },
		"capacity": func() (string, error) {
			u := uav
			u.CapacityJ *= 2
			return PlanKey(sc, u, Options{})
		},
		"scenario": func() (string, error) { return PlanKey(RandomScenario(20, 200, 2), uav, Options{}) },
	}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		k, err := cases[name]()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == base {
			t.Errorf("%s: option change did not change the key", name)
		}
	}
}

func TestPlanKeyOutputNeutralOptions(t *testing.T) {
	sc := RandomScenario(20, 200, 1)
	uav := DefaultUAV()
	base, err := PlanKey(sc, uav, Options{})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	par, err := PlanKey(sc, uav, Options{Parallel: true})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	tr, err := PlanKey(sc, uav, Options{Trace: NewTrace()})
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	if par != base || tr != base {
		t.Fatal("output-neutral options leaked into the key")
	}
}

func TestPlanKeyRejectsInvalid(t *testing.T) {
	sc := RandomScenario(20, 200, 1)
	if _, err := PlanKey(sc, DefaultUAV(), Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := PlanKey(Scenario{}, DefaultUAV(), Options{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
}

// TestPlanKeyMatchesCoreAdapter proves the facade and core hash the same
// canonical instance — the "shared by core" half of the cache-key
// contract.
func TestPlanKeyMatchesCoreAdapter(t *testing.T) {
	sc := RandomScenario(20, 200, 1)
	uav := DefaultUAV()
	opts := Options{Algorithm: AlgorithmGreedy, AltitudeM: 20, ShannonRadio: true}
	want, err := planKey(sc, uav, opts)
	if err != nil {
		t.Fatalf("planKey: %v", err)
	}
	in, err := sc.instance(uav, opts)
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	got, err := in.CanonKey(string(opts.Algorithm), opts.Refine)
	if err != nil {
		t.Fatalf("CanonKey: %v", err)
	}
	if got != want {
		t.Fatal("facade and core adapter keys diverge")
	}
}
