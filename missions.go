package uavdc

import (
	"encoding/json"
	"fmt"
	"io"

	"uavdc/internal/core"
	"uavdc/internal/mission"
	"uavdc/internal/multi"
	"uavdc/internal/simulate"
	"uavdc/internal/viz"
)

// FleetResult is a multi-UAV mission: one verified Result per UAV.
type FleetResult struct {
	PerUAV      []*Result
	CollectedMB float64
}

// PlanFleet plans a mission for fleetSize UAVs sharing the depot, each
// with its own full battery: the field is partitioned into balanced
// angular sectors and the chosen algorithm routes each UAV inside its
// sector. Every per-UAV plan is simulator-verified.
func PlanFleet(sc Scenario, uav UAV, opts Options, fleetSize int) (*FleetResult, error) {
	planner, err := plannerFor(opts)
	if err != nil {
		return nil, err
	}
	in, err := sc.instance(uav, opts)
	if err != nil {
		return nil, err
	}
	fp, err := multi.PlanFleet(in, multi.Options{
		Fleet:    fleetSize,
		Strategy: multi.StrategySweep,
		Base:     planner,
	})
	if err != nil {
		return nil, err
	}
	if err := fp.Validate(in); err != nil {
		return nil, fmt.Errorf("uavdc: fleet plan invalid: %w", err)
	}
	out := &FleetResult{}
	for u, plan := range fp.PerUAV {
		sim := simulate.Run(in.Net, in.Model, plan, simulate.Options{Altitude: in.Altitude, Radio: in.Radio})
		if !sim.Completed {
			return nil, fmt.Errorf("uavdc: uav %d mission aborted: %s", u, sim.AbortReason)
		}
		res := &Result{
			Algorithm:       plan.Algorithm,
			CollectedMB:     sim.Collected,
			EnergyJ:         sim.EnergyUsed,
			FlightDistanceM: sim.FlightDistance,
			HoverTimeS:      sim.HoverTime,
			MissionTimeS:    sim.MissionTime,
			plan:            plan,
			net:             in.Net,
		}
		for i := range plan.Stops {
			st := &plan.Stops[i]
			res.Stops = append(res.Stops, Stop{
				X: st.Pos.X, Y: st.Pos.Y,
				SojournS:    st.Sojourn,
				CollectedMB: st.CollectedTotal(),
			})
		}
		out.PerUAV = append(out.PerUAV, res)
		out.CollectedMB += sim.Collected
	}
	return out, nil
}

// CampaignResult summarises a multi-sortie campaign.
type CampaignResult struct {
	// SortieMB is the simulator-confirmed volume of each flight.
	SortieMB []float64
	// CollectedMB is the campaign total.
	CollectedMB float64
	// RemainingMB is what is left in the field.
	RemainingMB float64
	// Drained reports whether the field was emptied.
	Drained bool
	// MakespanS is the campaign's elapsed time in seconds, including the
	// recharge turnaround between flights.
	MakespanS float64
}

// PlanCampaign flies repeated sorties until the field drains or maxSorties
// is reached (≤ 0 means no practical limit), with instantaneous battery
// swaps at the depot.
func PlanCampaign(sc Scenario, uav UAV, opts Options, maxSorties int) (*CampaignResult, error) {
	return PlanCampaignRecharge(sc, uav, opts, maxSorties, 0)
}

// PlanCampaignRecharge is PlanCampaign with an explicit recharge
// turnaround between sorties, in seconds.
func PlanCampaignRecharge(sc Scenario, uav UAV, opts Options, maxSorties int, rechargeS float64) (*CampaignResult, error) {
	planner, err := plannerFor(opts)
	if err != nil {
		return nil, err
	}
	in, err := sc.instance(uav, opts)
	if err != nil {
		return nil, err
	}
	camp, err := mission.Run(in, planner, mission.Options{
		MaxSorties:   maxSorties,
		RechargeTime: rechargeS,
		Simulate:     simulate.Options{Altitude: in.Altitude, Radio: in.Radio},
	})
	if err != nil {
		return nil, err
	}
	return &CampaignResult{
		SortieMB:    camp.SortieVolumes,
		CollectedMB: camp.Collected,
		RemainingMB: camp.Remaining,
		Drained:     camp.Drained,
		MakespanS:   camp.Makespan,
	}, nil
}

// WriteSVG renders the mission (field, tour, coverage circles) as a
// standalone SVG document.
func (r *Result) WriteSVG(w io.Writer, coverRadiusM float64) error {
	if r.plan == nil || r.net == nil {
		return fmt.Errorf("uavdc: result was not produced by Plan")
	}
	return viz.WriteSVG(w, r.net, []*core.Plan{r.plan}, viz.Options{
		CoverRadius: coverRadiusM,
		Title:       fmt.Sprintf("%s: %.1f GB", r.Algorithm, r.CollectedMB/1024),
	})
}

// WriteSVG renders every UAV's tour in a distinct colour.
func (fr *FleetResult) WriteSVG(w io.Writer, coverRadiusM float64) error {
	var plans []*core.Plan
	for _, r := range fr.PerUAV {
		if r.plan == nil || r.net == nil {
			return fmt.Errorf("uavdc: fleet result was not produced by PlanFleet")
		}
		plans = append(plans, r.plan)
	}
	if len(plans) == 0 {
		return fmt.Errorf("uavdc: empty fleet result")
	}
	return viz.WriteSVG(w, fr.PerUAV[0].net, plans, viz.Options{
		CoverRadius: coverRadiusM,
		Title:       fmt.Sprintf("fleet of %d: %.1f GB", len(plans), fr.CollectedMB/1024),
	})
}

// WriteASCII renders the mission as a terminal map (digits mark stops in
// visiting order, D the depot).
func (r *Result) WriteASCII(w io.Writer, cols int) error {
	if r.plan == nil || r.net == nil {
		return fmt.Errorf("uavdc: result was not produced by Plan")
	}
	return viz.WriteASCII(w, r.net, r.plan, cols)
}

// WriteJSON serialises the scenario.
func (sc Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// ReadScenario deserialises a scenario written by WriteJSON and validates
// it.
func ReadScenario(r io.Reader) (Scenario, error) {
	var sc Scenario
	if err := json.NewDecoder(r).Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("uavdc: decoding scenario: %w", err)
	}
	if _, err := sc.network(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
