package uavdc

import (
	"math"
	"strings"
	"testing"
)

func TestPlanFleet(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 8e3
	single, err := Plan(sc, uav, Options{DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := PlanFleet(sc, uav, Options{DeltaM: 25}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.PerUAV) != 3 {
		t.Fatalf("fleet size %d", len(fleet.PerUAV))
	}
	if fleet.CollectedMB <= single.CollectedMB {
		t.Errorf("3 UAVs collected %v, single %v", fleet.CollectedMB, single.CollectedMB)
	}
	var sum float64
	for _, r := range fleet.PerUAV {
		sum += r.CollectedMB
		if r.EnergyJ > uav.CapacityJ+1e-6 {
			t.Errorf("uav over budget: %v", r.EnergyJ)
		}
	}
	if math.Abs(sum-fleet.CollectedMB) > 1e-6 {
		t.Error("per-UAV volumes do not add up")
	}
}

func TestPlanFleetErrors(t *testing.T) {
	sc := testScenario()
	if _, err := PlanFleet(sc, DefaultUAV(), Options{Algorithm: "nope"}, 2); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := PlanFleet(sc, DefaultUAV(), Options{}, 0); err == nil {
		t.Error("fleet size 0 accepted")
	}
}

func TestPlanCampaign(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 8e3
	camp, err := PlanCampaign(sc, uav, Options{DeltaM: 25}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !camp.Drained {
		t.Errorf("campaign left %v MB", camp.RemainingMB)
	}
	if len(camp.SortieMB) < 2 {
		t.Errorf("tight budget should need several sorties, got %d", len(camp.SortieMB))
	}
	if math.Abs(camp.CollectedMB-sc.TotalDataMB()) > 1 {
		t.Errorf("campaign collected %v of %v", camp.CollectedMB, sc.TotalDataMB())
	}
	capped, err := PlanCampaign(sc, uav, Options{DeltaM: 25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.SortieMB) != 1 || capped.Drained {
		t.Errorf("capped campaign: %+v", capped)
	}
}

func TestResultWriteSVG(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 1.5e4
	res, err := Plan(sc, uav, Options{DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteSVG(&sb, sc.CoverRadiusM); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") || !strings.Contains(sb.String(), "polyline") {
		t.Error("svg output malformed")
	}
	var empty Result
	if err := empty.WriteSVG(&sb, 0); err == nil {
		t.Error("hand-built result should not render")
	}
}

func TestFleetWriteSVG(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 8e3
	fleet, err := PlanFleet(sc, uav, Options{DeltaM: 25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fleet.WriteSVG(&sb, sc.CoverRadiusM); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fleet of 2") {
		t.Error("missing fleet title")
	}
	var emptyFleet FleetResult
	if err := emptyFleet.WriteSVG(&sb, 0); err == nil {
		t.Error("empty fleet should not render")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := testScenario()
	var sb strings.Builder
	if err := sc.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenario(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sensors) != len(sc.Sensors) || back.RegionSideM != sc.RegionSideM {
		t.Error("round trip lost data")
	}
	for i := range sc.Sensors {
		if back.Sensors[i] != sc.Sensors[i] {
			t.Fatalf("sensor %d changed", i)
		}
	}
	if _, err := ReadScenario(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON but invalid scenario (sensor outside region).
	bad := `{"RegionSideM":10,"DepotX":5,"DepotY":5,"Sensors":[{"X":50,"Y":0,"DataMB":1}],"BandwidthMBps":1,"CoverRadiusM":1}`
	if _, err := ReadScenario(strings.NewReader(bad)); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestPlanWithAltitudeAndShannon(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 2e4
	ideal, err := Plan(sc, uav, Options{DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	real, err := Plan(sc, uav, Options{DeltaM: 25, AltitudeM: 30, ShannonRadio: true})
	if err != nil {
		t.Fatal(err)
	}
	if real.CollectedMB > ideal.CollectedMB+1e-6 {
		t.Errorf("harsher physics collected more: %v vs %v", real.CollectedMB, ideal.CollectedMB)
	}
	if real.CollectedMB <= 0 {
		t.Error("realistic physics collected nothing")
	}
}

func TestPlanCampaignRechargeMakespan(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 8e3
	fast, err := PlanCampaign(sc, uav, Options{DeltaM: 25}, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := PlanCampaignRecharge(sc, uav, Options{DeltaM: 25}, 0, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.SortieMB) < 2 {
		t.Skip("need multiple sorties")
	}
	wantExtra := 1800 * float64(len(slow.SortieMB)-1)
	if slow.MakespanS < fast.MakespanS+wantExtra-1e-6 {
		t.Errorf("recharge makespan %v, flight-only %v, want +%v", slow.MakespanS, fast.MakespanS, wantExtra)
	}
	if fast.MakespanS <= 0 {
		t.Error("makespan not populated")
	}
}

func TestResultWriteASCII(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 1e4
	res, err := Plan(sc, uav, Options{DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteASCII(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "D") {
		t.Error("no depot in map")
	}
	var empty Result
	if err := empty.WriteASCII(&sb, 40); err == nil {
		t.Error("hand-built result rendered")
	}
}
