package uavdc

import (
	"io"
	"strings"

	"uavdc/internal/trace"
)

// Trace is a mission flight recorder. Attach one to Options.Trace and every
// planner phase (candidate generation, greedy iterations, the TSP/
// orienteering solver stack) records a hierarchical span, and every
// simulated mission records a "mission/..." event log (takeoff, arrivals,
// collections, replans, diversions, return) with battery, volume, and —
// under the adaptive executor — energy deviation and active fault counts.
//
// Recording never changes planner output: plans are bit-identical with
// tracing on or off, at any worker count. The event stream is deterministic
// modulo wall-clock timestamps — exporting with stripped times yields
// byte-identical output for a fixed scenario, options, fault schedule, and
// noise seed.
//
// A Trace is not safe for concurrent use across missions; the planners'
// internal parallel scans are sharded and merged deterministically by the
// library. The zero value is not usable; call NewTrace.
type Trace struct {
	buf *trace.Buffer
}

// NewTrace returns an empty flight recorder.
func NewTrace() *Trace { return &Trace{buf: trace.NewBuffer()} }

// SetDetail toggles per-candidate detail events ("scan/eval", one per
// candidate evaluation). Off (the default) records phase spans and mission
// events only; on, traces grow by one event per candidate scanned and
// remain deterministic.
func (t *Trace) SetDetail(on bool) { t.buf.SetDetail(on) }

// Len returns the number of records captured so far.
func (t *Trace) Len() int { return t.buf.Len() }

// Reset discards all captured records (metadata is kept).
func (t *Trace) Reset() { t.buf.Reset() }

// WriteJSONL exports the trace in the uavdc-trace/1 JSONL schema (see
// EXPERIMENTS.md). With stripTimes the wall-clock "t" field is omitted and
// the output is byte-deterministic.
func (t *Trace) WriteJSONL(w io.Writer, stripTimes bool) error {
	return trace.WriteJSONL(w, t.buf.Snapshot(), stripTimes)
}

// WriteChromeTrace exports the trace in the Chrome trace-event JSON array
// format, loadable in chrome://tracing or https://ui.perfetto.dev.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return trace.WriteChromeTrace(w, t.buf.Snapshot())
}

// WriteSummary writes the uavtrace text report — per-phase time attribution,
// the topK slowest spans, and the mission event timeline — to w.
func (t *Trace) WriteSummary(w io.Writer, topK int) error {
	var sb strings.Builder
	trace.Summarize(t.buf.Snapshot(), topK).WriteText(&sb)
	_, err := io.WriteString(w, sb.String())
	return err
}

// tracer resolves the internal tracer: Discard when no recorder is
// attached, so every call site can pass it unconditionally.
func (t *Trace) tracer() trace.Tracer {
	if t == nil || t.buf == nil {
		return trace.Discard
	}
	return t.buf
}
