package uavdc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func traceScenario() (Scenario, UAV) {
	sc := RandomScenario(18, 200, 5)
	uav := DefaultUAV()
	uav.CapacityJ = 7e3
	return sc, uav
}

// TestPlanUnchangedByTracing: attaching a flight recorder (detail on) must
// not change the planned mission in any field.
func TestPlanUnchangedByTracing(t *testing.T) {
	sc, uav := traceScenario()
	for _, alg := range []Algorithm{AlgorithmNoOverlap, AlgorithmGreedy, AlgorithmPartial, AlgorithmBaseline} {
		bare, err := Plan(sc, uav, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		trc := NewTrace()
		trc.SetDetail(true)
		traced, err := Plan(sc, uav, Options{Algorithm: alg, Trace: trc})
		if err != nil {
			t.Fatalf("%s traced: %v", alg, err)
		}
		if bare.CollectedMB != traced.CollectedMB || bare.EnergyJ != traced.EnergyJ ||
			len(bare.Stops) != len(traced.Stops) {
			t.Errorf("%s: tracing changed the plan: %+v vs %+v", alg, bare, traced)
		}
		for i := range bare.Stops {
			if bare.Stops[i] != traced.Stops[i] {
				t.Errorf("%s: stop %d differs with tracing on", alg, i)
			}
		}
		if trc.Len() == 0 {
			t.Errorf("%s: no records captured", alg)
		}
	}
}

// TestExecuteUnchangedByTracing: the adaptive executor under a fault
// schedule must also be bit-identical with tracing on vs off.
func TestExecuteUnchangedByTracing(t *testing.T) {
	sc, uav := traceScenario()
	opts := ExecuteOptions{FaultSpec: "default", NoiseSpread: 0.05, NoiseSeed: 3}
	bare, err := Execute(sc, uav, opts)
	if err != nil {
		t.Fatal(err)
	}
	traced := opts
	traced.Trace = NewTrace()
	got, err := Execute(sc, uav, traced)
	if err != nil {
		t.Fatal(err)
	}
	if *bare != *got {
		t.Errorf("tracing changed the execution:\nbare   %+v\ntraced %+v", bare, got)
	}
	if traced.Trace.Len() == 0 {
		t.Error("no records captured")
	}
}

// TestTraceExportAndSummary exercises the public Trace surface end to end:
// a faulted adaptive mission records planner spans plus a mission event log,
// exports to both formats, and summarizes.
func TestTraceExportAndSummary(t *testing.T) {
	sc, uav := traceScenario()
	trc := NewTrace()
	opts := ExecuteOptions{FaultSpec: "default"}
	opts.Trace = trc
	if _, err := Execute(sc, uav, opts); err != nil {
		t.Fatal(err)
	}

	var jsonl bytes.Buffer
	if err := trc.WriteJSONL(&jsonl, true); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(jsonl.String(), "\n")
	if !strings.Contains(first, `"schema":"uavdc-trace/1"`) {
		t.Errorf("missing schema header: %s", first)
	}
	if strings.Contains(jsonl.String(), `"t":`) {
		t.Error("stripped export still contains wall times")
	}
	if !strings.Contains(jsonl.String(), "mission/takeoff") ||
		!strings.Contains(jsonl.String(), "mission/return") {
		t.Error("mission event log missing from the trace")
	}

	var chrome bytes.Buffer
	if err := trc.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Error("chrome export is empty")
	}

	var sum strings.Builder
	if err := trc.WriteSummary(&sum, 5); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phases (by total time):", "mission timeline:", "takeoff"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}

	// Reset drops the records; the recorder is reusable.
	trc.Reset()
	if trc.Len() != 0 {
		t.Errorf("Len after Reset = %d", trc.Len())
	}
}

// TestTraceRepeatDeterminism: two identical missions produce byte-identical
// stripped exports.
func TestTraceRepeatDeterminism(t *testing.T) {
	sc, uav := traceScenario()
	export := func() []byte {
		trc := NewTrace()
		opts := ExecuteOptions{FaultSpec: "default", NoiseSpread: 0.05, NoiseSeed: 3}
		opts.Trace = trc
		if _, err := Execute(sc, uav, opts); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := trc.WriteJSONL(&b, true); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(export(), export()) {
		t.Error("repeated identical missions produced different stripped traces")
	}
}
