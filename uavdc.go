package uavdc

import (
	"fmt"
	"runtime"

	"uavdc/internal/core"
	"uavdc/internal/energy"
	"uavdc/internal/geom"
	"uavdc/internal/radio"
	"uavdc/internal/rng"
	"uavdc/internal/sensornet"
	"uavdc/internal/simulate"
	"uavdc/internal/trace"
	"uavdc/internal/units"
)

// Algorithm selects a planner.
type Algorithm string

const (
	// AlgorithmNoOverlap is the paper's Algorithm 1: reduction to rooted
	// orienteering on the auxiliary energy graph, with pairwise-disjoint
	// hovering coverage.
	AlgorithmNoOverlap Algorithm = "no-overlap"
	// AlgorithmGreedy is Algorithm 2: ρ-ratio greedy insertion with
	// overlapping coverage and full per-stop collection.
	AlgorithmGreedy Algorithm = "greedy"
	// AlgorithmPartial is Algorithm 3: Algorithm 2 over K virtual
	// hovering locations per candidate, allowing partial collection.
	AlgorithmPartial Algorithm = "partial"
	// AlgorithmBaseline is the evaluation benchmark: a TSP tour over all
	// sensors pruned to the energy budget, one sensor per stop.
	AlgorithmBaseline Algorithm = "baseline"
	// AlgorithmLNS runs Algorithm 3 and then improves it with
	// destroy-and-repair large-neighbourhood search — the strongest (and
	// slowest) planner in the library, an extension beyond the paper.
	AlgorithmLNS Algorithm = "lns"
)

// Sensor is one aggregate IoT node: ground position in metres and stored
// data volume in MB.
type Sensor struct {
	X, Y   float64
	DataMB float64
}

// Scenario describes the field the UAV must serve.
type Scenario struct {
	// RegionSideM is the edge of the square monitoring region, metres.
	RegionSideM float64
	// DepotX, DepotY is the UAV's start/return position.
	DepotX, DepotY float64
	// Sensors is the aggregate node set.
	Sensors []Sensor
	// BandwidthMBps is the per-sensor uplink rate B.
	BandwidthMBps float64
	// CoverRadiusM is the hovering coverage radius R0.
	CoverRadiusM float64
}

// RandomScenario draws n sensors uniformly in a side×side region with
// stored volumes uniform in [100, 1000] MB and the paper's default
// bandwidth (150 MB/s) and coverage radius (50 m). The same seed always
// produces the same scenario.
func RandomScenario(n int, side float64, seed uint64) Scenario {
	p := sensornet.DefaultGenParams()
	p.NumSensors = n
	p.Side = side
	net, err := sensornet.Generate(p, rng.New(seed))
	if err != nil {
		// DefaultGenParams with positive n/side cannot fail; a failure
		// here is a programming error.
		panic(err)
	}
	sc := Scenario{
		RegionSideM:   side,
		DepotX:        net.Depot.X,
		DepotY:        net.Depot.Y,
		BandwidthMBps: net.Bandwidth,
		CoverRadiusM:  net.CommRange,
		Sensors:       make([]Sensor, len(net.Sensors)),
	}
	for i, s := range net.Sensors {
		sc.Sensors[i] = Sensor{X: s.Pos.X, Y: s.Pos.Y, DataMB: s.Data}
	}
	return sc
}

// network converts the scenario to the internal representation.
func (sc Scenario) network() (*sensornet.Network, error) {
	net := &sensornet.Network{
		Region:    geom.Square(sc.RegionSideM),
		Depot:     geom.Pt(sc.DepotX, sc.DepotY),
		Bandwidth: sc.BandwidthMBps,
		CommRange: sc.CoverRadiusM,
		Sensors:   make([]sensornet.Sensor, len(sc.Sensors)),
	}
	for i, s := range sc.Sensors {
		net.Sensors[i] = sensornet.Sensor{Pos: geom.Pt(s.X, s.Y), Data: s.DataMB}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// TotalDataMB returns the sum of all stored volumes.
func (sc Scenario) TotalDataMB() float64 {
	var sum float64
	for _, s := range sc.Sensors {
		sum += s.DataMB
	}
	return sum
}

// UAV is the vehicle's energy model.
type UAV struct {
	// HoverPowerW is η_h in J/s.
	HoverPowerW float64
	// TravelPowerW is η_t in J/s.
	TravelPowerW float64
	// SpeedMS is the cruising speed in m/s.
	SpeedMS float64
	// CapacityJ is the battery capacity E in joules.
	CapacityJ float64
	// ClimbPowerW and ClimbRateMS enable the vertical energy model: each
	// mission pays one ascent to and one descent from AltitudeM at
	// ClimbPowerW watts and ClimbRateMS m/s. Both zero (the default)
	// reproduces the paper's free-altitude abstraction.
	ClimbPowerW float64
	ClimbRateMS float64
}

// DefaultUAV returns the paper's Phantom-4-class model: 150 W hover,
// 100 W travel, 10 m/s, 3×10⁵ J battery.
func DefaultUAV() UAV {
	m := energy.Default()
	return UAV{HoverPowerW: m.HoverPower.F(), TravelPowerW: m.TravelPower.F(), SpeedMS: m.Speed.F(), CapacityJ: m.Capacity.F()}
}

func (u UAV) model() energy.Model {
	return energy.Model{
		HoverPower:  units.Watts(u.HoverPowerW),
		TravelPower: units.Watts(u.TravelPowerW),
		Speed:       units.MetersPerSecond(u.SpeedMS),
		Capacity:    units.Joules(u.CapacityJ),
		ClimbPower:  units.Watts(u.ClimbPowerW),
		ClimbRate:   units.MetersPerSecond(u.ClimbRateMS),
	}
}

// Options tunes the planner.
type Options struct {
	// Algorithm picks the planner; empty means AlgorithmPartial.
	Algorithm Algorithm
	// DeltaM is the grid resolution δ in metres; 0 means CoverRadius/5.
	DeltaM float64
	// K is the sojourn partition for AlgorithmPartial; 0 means 4.
	K int
	// AltitudeM is the hovering altitude H. Zero keeps the paper's
	// ground-level abstraction; a positive value shrinks the effective
	// coverage radius to sqrt(R²−H²) and, with ShannonRadio, lengthens
	// every uplink's slant path.
	AltitudeM float64
	// ShannonRadio replaces the constant-bandwidth uplink with a Shannon-
	// capacity model calibrated so the scenario bandwidth is reached at
	// the hovering altitude (free-space path loss). This removes the
	// paper's "rate differences are negligible" assumption.
	ShannonRadio bool
	// Refine post-optimises the plan by sliding stops off their δ-grid
	// centres (within coverage) and re-ordering — a continuous polish the
	// paper's discretisation forgoes. Never increases energy.
	Refine bool
	// Parallel fans the greedy planners' per-iteration candidate scan
	// across all CPUs. Plans are identical to serial runs (deterministic
	// total-order merging); only wall time changes.
	Parallel bool
	// Trace attaches a mission flight recorder (see NewTrace): planner
	// phase spans and the verification simulation's mission event log are
	// appended to it. Recording never changes the plan; nil disables
	// tracing.
	Trace *Trace
}

// radioModel resolves the uplink model the options imply.
func (o Options) radioModel(sc Scenario) radio.Model {
	if !o.ShannonRadio {
		return nil
	}
	ref := o.AltitudeM
	if ref <= 0 {
		ref = 10
	}
	return radio.Shannon{RefRate: units.BitsPerSecond(sc.BandwidthMBps), RefDist: units.Meters(ref), RefSNR: 100, PathLossExp: 2}
}

// Stop is one hovering stop of a planned tour.
type Stop struct {
	X, Y        float64
	SojournS    float64
	CollectedMB float64
}

// Result is a planned (and simulation-verified) mission.
type Result struct {
	Algorithm       string
	Stops           []Stop
	CollectedMB     float64
	EnergyJ         float64
	FlightDistanceM float64
	HoverTimeS      float64
	MissionTimeS    float64

	// plan and net keep the internal representation for rendering.
	plan *core.Plan
	net  *sensornet.Network
}

// plannerFor resolves the Algorithm name to an internal planner.
func plannerFor(opts Options) (core.Planner, error) {
	workers := 0
	if opts.Parallel {
		workers = runtime.NumCPU() //uavdc:allow pureplan worker count only partitions the deterministic scan; plans are bit-identical across worker counts (fastpath parity gate at GOMAXPROCS 1/4/8)
	}
	switch opts.Algorithm {
	case AlgorithmNoOverlap:
		return &core.Algorithm1{}, nil
	case AlgorithmGreedy:
		return &core.Algorithm2{Workers: workers}, nil
	case AlgorithmPartial, "":
		return &core.Algorithm3{Workers: workers}, nil
	case AlgorithmBaseline:
		return &core.BenchmarkPlanner{}, nil
	case AlgorithmLNS:
		return &core.LNSPlanner{Base: &core.Algorithm3{Workers: workers}}, nil
	default:
		return nil, fmt.Errorf("uavdc: unknown algorithm %q", opts.Algorithm)
	}
}

// instance converts the public types into a planning instance.
func (sc Scenario) instance(uav UAV, opts Options) (*core.Instance, error) {
	net, err := sc.network()
	if err != nil {
		return nil, err
	}
	em := uav.model()
	if err := em.Validate(); err != nil {
		return nil, err
	}
	delta := opts.DeltaM
	if delta == 0 {
		delta = sc.CoverRadiusM / 5
	}
	k := opts.K
	if k == 0 {
		k = 4
	}
	return &core.Instance{
		Net:      net,
		Model:    em,
		Delta:    units.Meters(delta),
		K:        k,
		Altitude: units.Meters(opts.AltitudeM),
		Radio:    opts.radioModel(sc),
	}, nil
}

// Plan computes a collection tour for the scenario, verifies it with the
// flight simulator, and returns its summary. It is the single entry point
// a downstream application needs.
func Plan(sc Scenario, uav UAV, opts Options) (*Result, error) {
	planner, err := plannerFor(opts)
	if err != nil {
		return nil, err
	}
	in, err := sc.instance(uav, opts)
	if err != nil {
		return nil, err
	}
	net, em := in.Net, in.Model
	tr := opts.Trace.tracer()
	if tr.Enabled() {
		in.Obs = trace.With(in.Obs, tr)
	}
	plan, err := planner.Plan(in)
	if err != nil {
		return nil, err
	}
	if tr.Enabled() {
		opts.Trace.buf.SetMeta(
			trace.Str("algorithm", plan.Algorithm),
			trace.Num("delta_m", in.Delta.F()),
			trace.Int("k", in.K),
			trace.Int("sensors", len(net.Sensors)))
	}
	if opts.Refine {
		plan = core.RefinePlan(in, plan)
	}
	if err := core.ValidatePlanPhysics(net, em, in.Physics(), plan); err != nil {
		return nil, fmt.Errorf("uavdc: planner produced invalid plan: %w", err)
	}
	sim := simulate.Run(net, em, plan, simulate.Options{Altitude: in.Altitude, Radio: in.Radio, Trace: tr})
	if !sim.Completed {
		return nil, fmt.Errorf("uavdc: simulated mission aborted: %s", sim.AbortReason)
	}
	res := &Result{
		Algorithm:       plan.Algorithm,
		CollectedMB:     sim.Collected,
		EnergyJ:         sim.EnergyUsed,
		FlightDistanceM: sim.FlightDistance,
		HoverTimeS:      sim.HoverTime,
		MissionTimeS:    sim.MissionTime,
		plan:            plan,
		net:             net,
	}
	for i := range plan.Stops {
		st := &plan.Stops[i]
		res.Stops = append(res.Stops, Stop{
			X: st.Pos.X, Y: st.Pos.Y,
			SojournS:    st.Sojourn,
			CollectedMB: st.CollectedTotal(),
		})
	}
	return res, nil
}
