package uavdc

import (
	"math"
	"testing"
)

func testScenario() Scenario { return RandomScenario(40, 300, 1) }

func TestRandomScenarioShape(t *testing.T) {
	sc := testScenario()
	if len(sc.Sensors) != 40 || sc.RegionSideM != 300 {
		t.Fatalf("scenario shape: %d sensors, side %v", len(sc.Sensors), sc.RegionSideM)
	}
	if sc.BandwidthMBps != 150 || sc.CoverRadiusM != 50 {
		t.Errorf("defaults: B=%v R0=%v", sc.BandwidthMBps, sc.CoverRadiusM)
	}
	if sc.DepotX != 150 || sc.DepotY != 150 {
		t.Errorf("depot not centred: (%v, %v)", sc.DepotX, sc.DepotY)
	}
	for i, s := range sc.Sensors {
		if s.X < 0 || s.X > 300 || s.Y < 0 || s.Y > 300 {
			t.Fatalf("sensor %d outside region", i)
		}
		if s.DataMB < 100 || s.DataMB >= 1000 {
			t.Fatalf("sensor %d data %v", i, s.DataMB)
		}
	}
	if sc.TotalDataMB() <= 0 {
		t.Error("TotalDataMB not positive")
	}
	// Determinism.
	if RandomScenario(40, 300, 1).Sensors[0] != sc.Sensors[0] {
		t.Error("RandomScenario not deterministic")
	}
}

func TestDefaultUAVMatchesPaper(t *testing.T) {
	u := DefaultUAV()
	if u.HoverPowerW != 150 || u.TravelPowerW != 100 || u.SpeedMS != 10 || u.CapacityJ != 3e5 {
		t.Errorf("DefaultUAV = %+v", u)
	}
}

func TestPlanAllAlgorithms(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 2e4
	for _, alg := range []Algorithm{AlgorithmNoOverlap, AlgorithmGreedy, AlgorithmPartial, AlgorithmBaseline} {
		res, err := Plan(sc, uav, Options{Algorithm: alg, DeltaM: 25})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.CollectedMB <= 0 {
			t.Errorf("%s collected nothing", alg)
		}
		if res.EnergyJ > uav.CapacityJ+1e-6 {
			t.Errorf("%s used %v J > capacity", alg, res.EnergyJ)
		}
		if res.CollectedMB > sc.TotalDataMB()+1e-6 {
			t.Errorf("%s collected more than exists", alg)
		}
		var stopSum float64
		for _, st := range res.Stops {
			stopSum += st.CollectedMB
		}
		if math.Abs(stopSum-res.CollectedMB) > 1e-6*(1+stopSum) {
			t.Errorf("%s stop totals %v != result %v", alg, stopSum, res.CollectedMB)
		}
	}
}

func TestPlanDefaults(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 2e4
	res, err := Plan(sc, uav, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "algorithm3" {
		t.Errorf("default algorithm = %s, want algorithm3", res.Algorithm)
	}
}

func TestPlanErrors(t *testing.T) {
	sc := testScenario()
	if _, err := Plan(sc, DefaultUAV(), Options{Algorithm: "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad := sc
	bad.BandwidthMBps = 0
	if _, err := Plan(bad, DefaultUAV(), Options{}); err == nil {
		t.Error("invalid scenario accepted")
	}
	badUAV := DefaultUAV()
	badUAV.SpeedMS = 0
	if _, err := Plan(sc, badUAV, Options{}); err == nil {
		t.Error("invalid UAV accepted")
	}
	outside := sc
	outside.Sensors = append([]Sensor(nil), sc.Sensors...)
	outside.Sensors[0].X = -10
	if _, err := Plan(outside, DefaultUAV(), Options{}); err == nil {
		t.Error("sensor outside region accepted")
	}
}

func TestPlanRefineNeverWorse(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 1.5e4
	plain, err := Plan(sc, uav, Options{DeltaM: 40})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Plan(sc, uav, Options{DeltaM: 40, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.CollectedMB < plain.CollectedMB-1e-6 {
		t.Errorf("refine lost volume: %v vs %v", refined.CollectedMB, plain.CollectedMB)
	}
	if refined.FlightDistanceM > plain.FlightDistanceM+1e-6 {
		t.Errorf("refine lengthened flight: %v vs %v", refined.FlightDistanceM, plain.FlightDistanceM)
	}
}

func TestPlanParallelIdentical(t *testing.T) {
	sc := RandomScenario(80, 400, 4)
	uav := DefaultUAV()
	uav.CapacityJ = 2e4
	serial, err := Plan(sc, uav, Options{DeltaM: 10})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Plan(sc, uav, Options{DeltaM: 10, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CollectedMB != par.CollectedMB || len(serial.Stops) != len(par.Stops) {
		t.Errorf("parallel differs: %v/%d vs %v/%d",
			par.CollectedMB, len(par.Stops), serial.CollectedMB, len(serial.Stops))
	}
}

func TestPlanMoreEnergyMoreData(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 1e4
	lo, err := Plan(sc, uav, Options{DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	uav.CapacityJ = 4e4
	hi, err := Plan(sc, uav, Options{DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	if hi.CollectedMB < lo.CollectedMB {
		t.Errorf("more energy collected less: %v vs %v", hi.CollectedMB, lo.CollectedMB)
	}
}

func TestPlanLNSAlgorithm(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 1e4
	base, err := Plan(sc, uav, Options{Algorithm: AlgorithmPartial, DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	lns, err := Plan(sc, uav, Options{Algorithm: AlgorithmLNS, DeltaM: 25})
	if err != nil {
		t.Fatal(err)
	}
	if lns.Algorithm != "lns" {
		t.Errorf("algorithm = %q", lns.Algorithm)
	}
	if lns.CollectedMB < base.CollectedMB-1e-6 {
		t.Errorf("LNS %v below its base %v", lns.CollectedMB, base.CollectedMB)
	}
}

func TestPlanWithVerticalEnergy(t *testing.T) {
	sc := testScenario()
	uav := DefaultUAV()
	uav.CapacityJ = 1.5e4
	uav.ClimbPowerW = 200
	uav.ClimbRateMS = 3
	free, err := Plan(sc, uav, Options{DeltaM: 25}) // altitude 0: no overhead
	if err != nil {
		t.Fatal(err)
	}
	paid, err := Plan(sc, uav, Options{DeltaM: 25, AltitudeM: 30})
	if err != nil {
		t.Fatal(err)
	}
	if paid.CollectedMB >= free.CollectedMB {
		t.Errorf("vertical overhead should cost volume: %v vs %v", paid.CollectedMB, free.CollectedMB)
	}
	if paid.EnergyJ > uav.CapacityJ+1e-6 {
		t.Errorf("over budget with climb: %v", paid.EnergyJ)
	}
}
